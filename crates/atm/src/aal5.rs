//! AAL5 segmentation and reassembly — how a video frame actually becomes
//! cells.
//!
//! ATM Adaptation Layer 5 (ITU-T I.363.5) carries a variable-length PDU by:
//!
//! 1. appending an 8-byte trailer `[UU, CPI, length(2), CRC-32(4)]` after
//!    zero-padding so the total is a multiple of 48 bytes;
//! 2. slicing into 48-byte cell payloads;
//! 3. marking the *last* cell of the PDU with SDU-type 1 in the cell
//!    header's payload-type field (`PayloadType::User1`).
//!
//! The CRC-32 is the IEEE 802.3 polynomial computed over payload + padding +
//! the first 4 trailer bytes. Reassembly validates length and CRC and
//! reports precise error causes — a receiver must drop the whole PDU on any
//! mismatch (there is no per-cell retransmission in AAL5).

use crate::cell::{Cell, CellHeader, PayloadType, PAYLOAD_SIZE};

/// Maximum AAL5 PDU payload (16 bits of length field, minus nothing — the
/// length field counts payload only).
pub const MAX_PDU: usize = 65_535;

/// Why reassembly failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReassemblyError {
    /// No cells supplied.
    Empty,
    /// The final cell is not marked end-of-PDU (truncated burst).
    MissingEnd,
    /// An interior cell carries the end-of-PDU mark (concatenated PDUs fed
    /// as one).
    EarlyEnd,
    /// Trailer length field is inconsistent with the cell count.
    BadLength {
        /// Length claimed by the trailer.
        claimed: usize,
        /// Cells received.
        cells: usize,
    },
    /// CRC-32 mismatch.
    BadCrc {
        /// CRC computed over the received bytes.
        computed: u32,
        /// CRC carried in the trailer.
        carried: u32,
    },
}

impl std::fmt::Display for ReassemblyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReassemblyError::Empty => write!(f, "no cells"),
            ReassemblyError::MissingEnd => write!(f, "last cell not marked end-of-PDU"),
            ReassemblyError::EarlyEnd => write!(f, "interior cell marked end-of-PDU"),
            ReassemblyError::BadLength { claimed, cells } => {
                write!(f, "trailer length {claimed} impossible for {cells} cells")
            }
            ReassemblyError::BadCrc { computed, carried } => {
                write!(f, "CRC mismatch: computed {computed:08x}, carried {carried:08x}")
            }
        }
    }
}

impl std::error::Error for ReassemblyError {}

/// CRC-32 (IEEE 802.3, reflected, init all-ones, final complement) as used
/// by AAL5.
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320; // reflected 0x04C11DB7
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

/// Segments a PDU into AAL5 cells under the given header template.
///
/// All cells carry `header`'s VPI/VCI/CLP; the payload-type field is forced
/// to `User0` for non-final and `User1` for the final cell.
///
/// # Panics
/// Panics if the payload exceeds [`MAX_PDU`].
pub fn segment(payload: &[u8], header: CellHeader) -> Vec<Cell> {
    assert!(
        payload.len() <= MAX_PDU,
        "AAL5 PDU too large: {} > {MAX_PDU}",
        payload.len()
    );
    // Total = payload + pad + 8-byte trailer, multiple of 48.
    let with_trailer = payload.len() + 8;
    let total = with_trailer.div_ceil(PAYLOAD_SIZE) * PAYLOAD_SIZE;
    let pad = total - with_trailer;

    let mut buf = Vec::with_capacity(total);
    buf.extend_from_slice(payload);
    buf.resize(payload.len() + pad, 0);
    // Trailer: CPCS-UU (0), CPI (0), length, CRC-32.
    buf.push(0); // UU
    buf.push(0); // CPI
    buf.extend_from_slice(&(payload.len() as u16).to_be_bytes());
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_be_bytes());
    debug_assert_eq!(buf.len(), total);

    buf.chunks_exact(PAYLOAD_SIZE)
        .enumerate()
        .map(|(i, chunk)| {
            let last = (i + 1) * PAYLOAD_SIZE == total;
            let mut h = header;
            h.pt = if last {
                PayloadType::User1
            } else {
                PayloadType::User0
            };
            let mut cell_payload = [0u8; PAYLOAD_SIZE];
            cell_payload.copy_from_slice(chunk);
            Cell::new(h, cell_payload)
        })
        .collect()
}

/// Reassembles one PDU from its cells (in order, no interleaving).
pub fn reassemble(cells: &[Cell]) -> Result<Vec<u8>, ReassemblyError> {
    if cells.is_empty() {
        return Err(ReassemblyError::Empty);
    }
    let last = cells.len() - 1;
    for (i, cell) in cells.iter().enumerate() {
        let is_end = matches!(
            cell.header.pt,
            PayloadType::User1 | PayloadType::UserCongested1
        );
        if i == last && !is_end {
            return Err(ReassemblyError::MissingEnd);
        }
        if i != last && is_end {
            return Err(ReassemblyError::EarlyEnd);
        }
    }

    let mut buf = Vec::with_capacity(cells.len() * PAYLOAD_SIZE);
    for cell in cells {
        buf.extend_from_slice(&cell.payload);
    }
    // Trailer occupies the last 8 bytes.
    let total = buf.len();
    let length = u16::from_be_bytes([buf[total - 6], buf[total - 5]]) as usize;
    let carried = u32::from_be_bytes([
        buf[total - 4],
        buf[total - 3],
        buf[total - 2],
        buf[total - 1],
    ]);
    // Valid length: fits in the cells with trailer and padding < 48 extra.
    let max_payload = total - 8;
    let min_payload = total.saturating_sub(PAYLOAD_SIZE + 7);
    if length > max_payload || length < min_payload {
        return Err(ReassemblyError::BadLength {
            claimed: length,
            cells: cells.len(),
        });
    }
    let computed = crc32(&buf[..total - 4]);
    if computed != carried {
        return Err(ReassemblyError::BadCrc { computed, carried });
    }
    buf.truncate(length);
    Ok(buf)
}

/// Number of cells AAL5 needs for a payload of `len` bytes — the frame-size
/// quantization video sources see. (`len + 8` rounded up to 48.)
pub fn cells_for_payload(len: usize) -> usize {
    (len + 8).div_ceil(PAYLOAD_SIZE)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> CellHeader {
        CellHeader {
            gfc: 0,
            vpi: 1,
            vci: 42,
            pt: PayloadType::User0,
            clp: false,
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // IEEE CRC-32 of "123456789" is 0xCBF43926.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn roundtrip_various_sizes() {
        // Cover the padding edge cases around the 48-byte boundary.
        for len in [0usize, 1, 39, 40, 41, 47, 48, 88, 89, 1500, 65_535] {
            let payload: Vec<u8> = (0..len).map(|i| (i * 7) as u8).collect();
            let cells = segment(&payload, header());
            assert_eq!(cells.len(), cells_for_payload(len), "len {len}");
            let back = reassemble(&cells).unwrap_or_else(|e| panic!("len {len}: {e}"));
            assert_eq!(back, payload, "len {len}");
        }
    }

    #[test]
    fn only_final_cell_marked() {
        let cells = segment(&[0xAA; 200], header());
        for (i, c) in cells.iter().enumerate() {
            let is_last = i == cells.len() - 1;
            assert_eq!(
                c.header.pt == PayloadType::User1,
                is_last,
                "cell {i} marking"
            );
        }
    }

    #[test]
    fn forty_byte_payload_fits_one_cell() {
        // 40 + 8 = 48 exactly: single cell, no padding.
        assert_eq!(cells_for_payload(40), 1);
        assert_eq!(cells_for_payload(41), 2);
        let cells = segment(&[1u8; 40], header());
        assert_eq!(cells.len(), 1);
        assert_eq!(reassemble(&cells).unwrap(), vec![1u8; 40]);
    }

    #[test]
    fn corrupted_payload_detected() {
        let payload: Vec<u8> = (0..500).map(|i| i as u8).collect();
        let mut cells = segment(&payload, header());
        cells[3].payload[10] ^= 0x01;
        match reassemble(&cells) {
            Err(ReassemblyError::BadCrc { .. }) => {}
            other => panic!("expected CRC error, got {other:?}"),
        }
    }

    #[test]
    fn lost_final_cell_detected() {
        let payload = vec![9u8; 300];
        let mut cells = segment(&payload, header());
        cells.pop();
        assert_eq!(reassemble(&cells), Err(ReassemblyError::MissingEnd));
    }

    #[test]
    fn lost_interior_cell_detected() {
        let payload: Vec<u8> = (0..500).map(|i| (i % 251) as u8).collect();
        let mut cells = segment(&payload, header());
        cells.remove(2);
        // Either the length check or the CRC catches it.
        assert!(reassemble(&cells).is_err());
    }

    #[test]
    fn concatenated_pdus_detected() {
        let a = segment(&[1u8; 100], header());
        let b = segment(&[2u8; 100], header());
        let joined: Vec<Cell> = a.into_iter().chain(b).collect();
        assert_eq!(reassemble(&joined), Err(ReassemblyError::EarlyEnd));
    }

    #[test]
    fn empty_input_detected() {
        assert_eq!(reassemble(&[]), Err(ReassemblyError::Empty));
    }

    #[test]
    fn video_frame_cell_counts() {
        // A 500-cell video frame corresponds to a ~23.6 kB elementary-stream
        // chunk: check the quantization arithmetic the models implicitly use.
        let bytes_per_frame = 500 * PAYLOAD_SIZE - 8; // exactly 500 cells
        assert_eq!(cells_for_payload(bytes_per_frame), 500);
        assert_eq!(cells_for_payload(bytes_per_frame + 1), 501);
    }

    #[test]
    fn error_display() {
        let e = ReassemblyError::BadLength {
            claimed: 99,
            cells: 1,
        };
        assert!(e.to_string().contains("99"));
    }
}

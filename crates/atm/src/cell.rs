//! The 53-byte ATM cell: header codec and HEC handling.
//!
//! Layout (UNI):
//!
//! ```text
//!  byte 0: GFC(4) | VPI high(4)
//!  byte 1: VPI low(4) | VCI bits 15..12
//!  byte 2: VCI bits 11..4
//!  byte 3: VCI bits 3..0 | PT(3) | CLP(1)
//!  byte 4: HEC — CRC-8 over bytes 0..4, poly x⁸+x²+x+1, XOR 0x55
//! ```
//!
//! NNI replaces the GFC field with four more VPI bits (12-bit VPI).
//!
//! The HEC is computed per ITU-T I.432; the receiver can additionally
//! *correct* any single-bit header error by syndrome lookup, which this
//! module implements (the standard's correction mode).

/// Total cell size in bytes.
pub const CELL_SIZE: usize = 53;
/// Payload size in bytes.
pub const PAYLOAD_SIZE: usize = 48;
/// Header size in bytes.
pub const HEADER_SIZE: usize = 5;

/// CRC-8 polynomial x⁸ + x² + x + 1 (0x07), MSB-first.
const HEC_POLY: u8 = 0x07;
/// Coset leader XORed into the CRC remainder (ITU-T I.432 §7.3.2.2).
const HEC_COSET: u8 = 0x55;

/// The 3-bit payload-type indicator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadType {
    /// User data, no congestion experienced, SDU-type 0.
    User0 = 0b000,
    /// User data, no congestion, SDU-type 1 (AAL5 end-of-frame).
    User1 = 0b001,
    /// User data, congestion experienced, SDU-type 0.
    UserCongested0 = 0b010,
    /// User data, congestion experienced, SDU-type 1.
    UserCongested1 = 0b011,
    /// Segment OAM F5 flow.
    OamSegment = 0b100,
    /// End-to-end OAM F5 flow.
    OamEndToEnd = 0b101,
    /// Resource management (e.g. ABR RM cells).
    ResourceManagement = 0b110,
    /// Reserved.
    Reserved = 0b111,
}

impl PayloadType {
    /// Decodes from the 3-bit field.
    pub fn from_bits(bits: u8) -> Self {
        match bits & 0b111 {
            0b000 => PayloadType::User0,
            0b001 => PayloadType::User1,
            0b010 => PayloadType::UserCongested0,
            0b011 => PayloadType::UserCongested1,
            0b100 => PayloadType::OamSegment,
            0b101 => PayloadType::OamEndToEnd,
            0b110 => PayloadType::ResourceManagement,
            _ => PayloadType::Reserved,
        }
    }
}

/// Decoded ATM cell header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellHeader {
    /// Generic flow control (UNI only; 0 on NNI — the field is repurposed
    /// as high VPI bits there).
    pub gfc: u8,
    /// Virtual path identifier (8 bits UNI, 12 bits NNI).
    pub vpi: u16,
    /// Virtual channel identifier (16 bits).
    pub vci: u16,
    /// Payload type indicator.
    pub pt: PayloadType,
    /// Cell loss priority: `true` = low priority (drop first). The paper's
    /// loss-rate targets refer to CLP=0 traffic.
    pub clp: bool,
}

impl CellHeader {
    /// Validates UNI field ranges.
    fn validate_uni(&self) {
        assert!(self.gfc <= 0xF, "GFC is 4 bits, got {}", self.gfc);
        assert!(self.vpi <= 0xFF, "UNI VPI is 8 bits, got {}", self.vpi);
    }

    /// Encodes the first four header bytes (UNI layout, no HEC).
    pub fn encode_uni(&self) -> [u8; 4] {
        self.validate_uni();
        let pt = self.pt as u8;
        [
            (self.gfc << 4) | ((self.vpi >> 4) as u8 & 0x0F),
            (((self.vpi & 0x0F) as u8) << 4) | ((self.vci >> 12) as u8 & 0x0F),
            (self.vci >> 4) as u8,
            (((self.vci & 0x0F) as u8) << 4) | (pt << 1) | u8::from(self.clp),
        ]
    }

    /// Decodes from the first four header bytes (UNI layout).
    pub fn decode_uni(bytes: &[u8; 4]) -> Self {
        Self {
            gfc: bytes[0] >> 4,
            vpi: (u16::from(bytes[0] & 0x0F) << 4) | u16::from(bytes[1] >> 4),
            vci: (u16::from(bytes[1] & 0x0F) << 12)
                | (u16::from(bytes[2]) << 4)
                | u16::from(bytes[3] >> 4),
            pt: PayloadType::from_bits((bytes[3] >> 1) & 0b111),
            clp: bytes[3] & 1 == 1,
        }
    }

    /// Encodes the first four header bytes (NNI layout: 12-bit VPI).
    pub fn encode_nni(&self) -> [u8; 4] {
        assert!(self.vpi <= 0xFFF, "NNI VPI is 12 bits, got {}", self.vpi);
        let pt = self.pt as u8;
        [
            (self.vpi >> 4) as u8,
            (((self.vpi & 0x0F) as u8) << 4) | ((self.vci >> 12) as u8 & 0x0F),
            (self.vci >> 4) as u8,
            (((self.vci & 0x0F) as u8) << 4) | (pt << 1) | u8::from(self.clp),
        ]
    }

    /// Decodes from the first four header bytes (NNI layout).
    pub fn decode_nni(bytes: &[u8; 4]) -> Self {
        Self {
            gfc: 0,
            vpi: (u16::from(bytes[0]) << 4) | u16::from(bytes[1] >> 4),
            vci: (u16::from(bytes[1] & 0x0F) << 12)
                | (u16::from(bytes[2]) << 4)
                | u16::from(bytes[3] >> 4),
            pt: PayloadType::from_bits((bytes[3] >> 1) & 0b111),
            clp: bytes[3] & 1 == 1,
        }
    }
}

/// Computes the HEC byte for four header bytes.
pub fn hec(header: &[u8; 4]) -> u8 {
    crc8(header) ^ HEC_COSET
}

fn crc8(data: &[u8]) -> u8 {
    let mut crc = 0u8;
    for &byte in data {
        crc ^= byte;
        for _ in 0..8 {
            crc = if crc & 0x80 != 0 {
                (crc << 1) ^ HEC_POLY
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Result of HEC verification at a receiver in correction mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HecStatus {
    /// Header intact.
    Valid,
    /// A single-bit error was detected and corrected; the payload carries
    /// the (bit-flipped byte index, bit mask) that was fixed.
    Corrected {
        /// Index (0..=4) of the corrected header byte.
        byte: usize,
        /// Bit mask that was flipped back.
        mask: u8,
    },
    /// Multi-bit error: the cell must be discarded.
    Uncorrectable,
}

/// Verifies (and possibly corrects) a 5-byte header in place.
///
/// Single-bit errors anywhere in the 40 header bits are corrected by
/// syndrome search; anything else is reported uncorrectable.
pub fn verify_and_correct(header: &mut [u8; 5]) -> HecStatus {
    let expect = hec(&[header[0], header[1], header[2], header[3]]);
    if expect == header[4] {
        return HecStatus::Valid;
    }
    // Try flipping each of the 40 bits and re-check.
    for byte in 0..5 {
        for bit in 0..8 {
            let mask = 1u8 << bit;
            header[byte] ^= mask;
            let ok = hec(&[header[0], header[1], header[2], header[3]]) == header[4];
            if ok {
                return HecStatus::Corrected { byte, mask };
            }
            header[byte] ^= mask; // undo
        }
    }
    HecStatus::Uncorrectable
}

/// A complete 53-byte cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Decoded header fields.
    pub header: CellHeader,
    /// 48-byte payload.
    pub payload: [u8; PAYLOAD_SIZE],
}

impl Cell {
    /// Builds a user-data cell.
    pub fn new(header: CellHeader, payload: [u8; PAYLOAD_SIZE]) -> Self {
        Self { header, payload }
    }

    /// Serializes to 53 bytes (UNI layout) with a freshly computed HEC.
    pub fn to_bytes(&self) -> [u8; CELL_SIZE] {
        let mut out = [0u8; CELL_SIZE];
        let head = self.header.encode_uni();
        out[..4].copy_from_slice(&head);
        out[4] = hec(&head);
        out[HEADER_SIZE..].copy_from_slice(&self.payload);
        out
    }

    /// Parses 53 bytes (UNI layout), verifying the HEC. Single-bit header
    /// errors are corrected transparently.
    ///
    /// Returns `None` when the header is uncorrectable.
    pub fn from_bytes(bytes: &[u8; CELL_SIZE]) -> Option<Self> {
        let mut head = [bytes[0], bytes[1], bytes[2], bytes[3], bytes[4]];
        if verify_and_correct(&mut head) == HecStatus::Uncorrectable {
            return None;
        }
        let header = CellHeader::decode_uni(&[head[0], head[1], head[2], head[3]]);
        let mut payload = [0u8; PAYLOAD_SIZE];
        payload.copy_from_slice(&bytes[HEADER_SIZE..]);
        Some(Self { header, payload })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> CellHeader {
        CellHeader {
            gfc: 0,
            vpi: 42,
            vci: 1234,
            pt: PayloadType::User0,
            clp: false,
        }
    }

    #[test]
    fn uni_roundtrip_all_fields() {
        for vpi in [0u16, 1, 255] {
            for vci in [0u16, 5, 65_535] {
                for clp in [false, true] {
                    let h = CellHeader {
                        gfc: 0xA,
                        vpi,
                        vci,
                        pt: PayloadType::User1,
                        clp,
                    };
                    let enc = h.encode_uni();
                    assert_eq!(CellHeader::decode_uni(&enc), h);
                }
            }
        }
    }

    #[test]
    fn nni_roundtrip_wide_vpi() {
        let h = CellHeader {
            gfc: 0,
            vpi: 0xABC,
            vci: 0x1234,
            pt: PayloadType::ResourceManagement,
            clp: true,
        };
        let enc = h.encode_nni();
        assert_eq!(CellHeader::decode_nni(&enc), h);
    }

    #[test]
    #[should_panic]
    fn uni_rejects_wide_vpi() {
        CellHeader {
            vpi: 0x100,
            ..sample_header()
        }
        .encode_uni();
    }

    #[test]
    fn hec_known_vector() {
        // All-zero header: CRC-8(0,0,0,0) = 0, HEC = coset 0x55.
        assert_eq!(hec(&[0, 0, 0, 0]), 0x55);
    }

    #[test]
    fn hec_detects_and_corrects_single_bit() {
        let head4 = sample_header().encode_uni();
        let mut full = [head4[0], head4[1], head4[2], head4[3], hec(&head4)];
        // Flip one bit in each position and verify correction.
        for byte in 0..5 {
            for bit in 0..8 {
                let mut corrupted = full;
                corrupted[byte] ^= 1 << bit;
                let status = verify_and_correct(&mut corrupted);
                assert_eq!(
                    status,
                    HecStatus::Corrected {
                        byte,
                        mask: 1 << bit
                    },
                    "byte {byte} bit {bit}"
                );
                assert_eq!(corrupted, full, "header must be restored");
            }
        }
        assert_eq!(verify_and_correct(&mut full), HecStatus::Valid);
    }

    #[test]
    fn hec_flags_double_bit_errors() {
        let head4 = sample_header().encode_uni();
        let mut full = [head4[0], head4[1], head4[2], head4[3], hec(&head4)];
        full[0] ^= 0b11; // two bit errors in one byte
        // Either uncorrectable, or (rarely for CRC-8) miscorrected — for
        // this polynomial adjacent double errors in the same byte are
        // detected.
        let status = verify_and_correct(&mut full);
        assert_eq!(status, HecStatus::Uncorrectable);
    }

    #[test]
    fn cell_roundtrip() {
        let mut payload = [0u8; PAYLOAD_SIZE];
        for (i, b) in payload.iter_mut().enumerate() {
            *b = i as u8;
        }
        let cell = Cell::new(sample_header(), payload);
        let bytes = cell.to_bytes();
        assert_eq!(bytes.len(), 53);
        let parsed = Cell::from_bytes(&bytes).expect("valid cell");
        assert_eq!(parsed, cell);
    }

    #[test]
    fn corrupted_cell_recovers_or_rejects() {
        let cell = Cell::new(sample_header(), [7u8; PAYLOAD_SIZE]);
        let mut bytes = cell.to_bytes();
        bytes[2] ^= 0x10; // single-bit header hit
        let parsed = Cell::from_bytes(&bytes).expect("single-bit must correct");
        assert_eq!(parsed.header, cell.header);

        let mut wrecked = cell.to_bytes();
        wrecked[0] ^= 0xFF;
        wrecked[1] ^= 0xFF;
        assert_eq!(Cell::from_bytes(&wrecked), None);
    }

    #[test]
    fn payload_type_decode_covers_all() {
        for bits in 0..8u8 {
            let pt = PayloadType::from_bits(bits);
            assert_eq!(pt as u8, bits);
        }
    }
}

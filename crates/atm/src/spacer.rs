//! Cell spacer: peak-rate shaping by re-timing.
//!
//! A spacer delays cells just enough to guarantee a minimum inter-departure
//! gap `T` — the shaping counterpart of `GCRA(T, 0)` policing: a stream that
//! has passed through a spacer with gap `T` conforms to `GCRA(T, 0)` by
//! construction (a property the tests verify).

/// A work-conserving cell spacer with minimum gap `T`.
#[derive(Debug, Clone, Copy)]
pub struct Spacer {
    gap: f64,
    last_departure: Option<f64>,
}

impl Spacer {
    /// Creates a spacer with minimum inter-cell gap `gap` seconds.
    ///
    /// # Panics
    /// Panics if `gap` is not positive and finite.
    pub fn new(gap: f64) -> Self {
        assert!(gap > 0.0 && gap.is_finite(), "invalid gap {gap}");
        Self {
            gap,
            last_departure: None,
        }
    }

    /// Creates a spacer for a peak cell rate (cells/sec).
    pub fn for_rate(cells_per_sec: f64) -> Self {
        assert!(cells_per_sec > 0.0, "invalid rate");
        Self::new(1.0 / cells_per_sec)
    }

    /// The enforced gap T.
    pub fn gap(&self) -> f64 {
        self.gap
    }

    /// Departure time for a cell arriving at `arrival` (non-decreasing
    /// across calls).
    ///
    /// # Panics
    /// Panics (debug) if arrivals go backwards in time.
    pub fn depart(&mut self, arrival: f64) -> f64 {
        let t = match self.last_departure {
            Some(last) => arrival.max(last + self.gap),
            None => arrival,
        };
        self.last_departure = Some(t);
        t
    }

    /// Current backlog delay a cell arriving at `arrival` would suffer.
    pub fn delay_at(&self, arrival: f64) -> f64 {
        match self.last_departure {
            Some(last) => (last + self.gap - arrival).max(0.0),
            None => 0.0,
        }
    }

    /// Resets to empty.
    pub fn reset(&mut self) {
        self.last_departure = None;
    }
}

/// Shapes a whole arrival sequence; returns departures.
pub fn shape(arrivals: &[f64], gap: f64) -> Vec<f64> {
    let mut spacer = Spacer::new(gap);
    arrivals.iter().map(|&t| spacer.depart(t)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gcra::{Gcra, GcraOutcome};

    #[test]
    fn sparse_stream_passes_untouched() {
        let arr = [0.0, 5.0, 11.0];
        assert_eq!(shape(&arr, 1.0), arr.to_vec());
    }

    #[test]
    fn burst_is_spread_at_gap() {
        let out = shape(&[0.0, 0.0, 0.0, 0.0], 0.5);
        assert_eq!(out, vec![0.0, 0.5, 1.0, 1.5]);
    }

    #[test]
    fn output_always_conforms_to_gcra() {
        // Arbitrary bursty arrivals -> shaped stream passes GCRA(T, 0).
        let arrivals: Vec<f64> = (0..200)
            .map(|i| (i / 10) as f64 * 0.3) // bursts of 10 at the same instant
            .collect();
        let gap = 0.07;
        let departures = shape(&arrivals, gap);
        let mut police = Gcra::new(gap, 1e-12);
        for &t in &departures {
            assert_eq!(police.police(t), GcraOutcome::Conforming, "at {t}");
        }
        // Departures never precede arrivals; order preserved.
        for (a, d) in arrivals.iter().zip(&departures) {
            assert!(d >= a);
        }
        for w in departures.windows(2) {
            assert!(w[1] - w[0] >= gap - 1e-12);
        }
    }

    #[test]
    fn delay_reporting() {
        let mut s = Spacer::new(1.0);
        assert_eq!(s.delay_at(0.0), 0.0);
        s.depart(0.0);
        assert!((s.delay_at(0.2) - 0.8).abs() < 1e-12);
        assert_eq!(s.delay_at(5.0), 0.0);
    }

    #[test]
    fn reset_forgets_history() {
        let mut s = Spacer::new(1.0);
        s.depart(0.0);
        s.reset();
        assert_eq!(s.depart(0.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_gap() {
        Spacer::new(0.0);
    }
}

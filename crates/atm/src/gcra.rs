//! The Generic Cell Rate Algorithm (ITU-T I.371 / ATM Forum TM 4.0),
//! virtual-scheduling formulation.
//!
//! `GCRA(T, τ)`: a cell arriving at time `t_a` conforms iff
//! `t_a ≥ TAT − τ`, where `TAT` is the theoretical arrival time; on a
//! conforming arrival `TAT ← max(t_a, TAT) + T`. `T` is the increment
//! (reciprocal of the policed rate) and `τ` the limit (CDVT for PCR
//! policing, burst tolerance for SCR policing).
//!
//! A VBR video contract is policed by *two* GCRAs — one on peak cell rate,
//! one on sustainable cell rate — which [`Gcra::dual`] composes.

/// Conformance outcome for one cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GcraOutcome {
    /// The cell conforms to the contract.
    Conforming,
    /// The cell violates the contract (police: drop or tag CLP=1).
    NonConforming,
}

/// A single GCRA policer instance.
#[derive(Debug, Clone, Copy)]
pub struct Gcra {
    /// Increment T (seconds/cell).
    increment: f64,
    /// Limit τ (seconds).
    limit: f64,
    /// Theoretical arrival time.
    tat: f64,
}

impl Gcra {
    /// Creates `GCRA(T, τ)`.
    ///
    /// # Panics
    /// Panics if `increment <= 0` or `limit < 0`.
    pub fn new(increment: f64, limit: f64) -> Self {
        assert!(
            increment > 0.0 && increment.is_finite(),
            "invalid increment {increment}"
        );
        assert!(limit >= 0.0 && limit.is_finite(), "invalid limit {limit}");
        Self {
            increment,
            limit,
            tat: 0.0,
        }
    }

    /// Convenience: a PCR policer from a peak cell rate (cells/sec) and
    /// cell-delay-variation tolerance (seconds).
    pub fn peak_rate(pcr_cells_per_sec: f64, cdvt: f64) -> Self {
        assert!(pcr_cells_per_sec > 0.0, "invalid PCR");
        Self::new(1.0 / pcr_cells_per_sec, cdvt)
    }

    /// Convenience: an SCR policer from a sustainable cell rate (cells/sec)
    /// and a maximum burst size (cells) at peak rate `pcr` (cells/sec).
    /// The burst tolerance is `τ = (MBS − 1)(1/SCR − 1/PCR)` (TM 4.0).
    pub fn sustainable_rate(scr: f64, pcr: f64, mbs: u32) -> Self {
        assert!(scr > 0.0 && pcr >= scr, "need PCR {pcr} >= SCR {scr} > 0");
        assert!(mbs >= 1, "burst size must be at least one cell");
        let tau = (mbs as f64 - 1.0) * (1.0 / scr - 1.0 / pcr);
        Self::new(1.0 / scr, tau)
    }

    /// The increment T.
    pub fn increment(&self) -> f64 {
        self.increment
    }

    /// The limit τ.
    pub fn limit(&self) -> f64 {
        self.limit
    }

    /// Tests a cell arriving at `time` (seconds, non-decreasing across
    /// calls) and updates state if it conforms.
    pub fn police(&mut self, time: f64) -> GcraOutcome {
        if time < self.tat - self.limit {
            GcraOutcome::NonConforming
        } else {
            self.tat = self.tat.max(time) + self.increment;
            GcraOutcome::Conforming
        }
    }

    /// Resets to the pristine state.
    pub fn reset(&mut self) {
        self.tat = 0.0;
    }

    /// Composes a dual policer (PCR + SCR): a cell conforms iff it conforms
    /// to both. Per TM 4.0 the state of *neither* algorithm is updated when
    /// the cell fails either test.
    pub fn dual(pcr: Gcra, scr: Gcra) -> DualGcra {
        DualGcra { pcr, scr }
    }
}

/// Dual leaky bucket: PCR/CDVT + SCR/BT.
#[derive(Debug, Clone, Copy)]
pub struct DualGcra {
    pcr: Gcra,
    scr: Gcra,
}

impl DualGcra {
    /// Tests a cell arriving at `time` against both contracts.
    pub fn police(&mut self, time: f64) -> GcraOutcome {
        // Peek both before updating either.
        let pcr_ok = time >= self.pcr.tat - self.pcr.limit;
        let scr_ok = time >= self.scr.tat - self.scr.limit;
        if pcr_ok && scr_ok {
            self.pcr.tat = self.pcr.tat.max(time) + self.pcr.increment;
            self.scr.tat = self.scr.tat.max(time) + self.scr.increment;
            GcraOutcome::Conforming
        } else {
            GcraOutcome::NonConforming
        }
    }

    /// Resets both buckets.
    pub fn reset(&mut self) {
        self.pcr.reset();
        self.scr.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use GcraOutcome::*;

    #[test]
    fn exact_rate_stream_conforms() {
        let mut g = Gcra::new(1.0, 0.0);
        for i in 0..100 {
            assert_eq!(g.police(i as f64), Conforming, "cell {i}");
        }
    }

    #[test]
    fn early_cell_without_tolerance_fails() {
        let mut g = Gcra::new(1.0, 0.0);
        assert_eq!(g.police(0.0), Conforming);
        assert_eq!(g.police(0.5), NonConforming);
        // State unchanged by the violation: a cell at TAT still conforms.
        assert_eq!(g.police(1.0), Conforming);
    }

    #[test]
    fn tolerance_admits_jitter() {
        let mut g = Gcra::new(1.0, 0.4);
        assert_eq!(g.police(0.0), Conforming); // TAT -> 1.0
        assert_eq!(g.police(0.7), Conforming); // 0.7 >= 1.0-0.4; TAT -> 2.0
        assert_eq!(g.police(1.5), NonConforming); // 1.5 < 2.0-0.4
        assert_eq!(g.police(1.6), Conforming);
    }

    #[test]
    fn slow_stream_never_accumulates_credit_loss() {
        let mut g = Gcra::new(1.0, 0.0);
        for i in 0..50 {
            assert_eq!(g.police(i as f64 * 3.0), Conforming);
        }
    }

    #[test]
    fn burst_tolerance_formula() {
        // SCR policer with MBS=10 at PCR must admit exactly a 10-cell
        // back-to-back burst at peak rate, and reject the 11th.
        let pcr = 100.0; // cells/s -> 10 ms spacing
        let scr = 10.0; // cells/s -> 100 ms spacing
        let mbs = 10;
        let mut g = Gcra::sustainable_rate(scr, pcr, mbs);
        let mut conforming = 0;
        // 15 back-to-back cells at peak: exactly the first MBS=10 conform
        // (the bucket refills enough for another conforming cell only by
        // cell index 19, outside this burst).
        for i in 0..15 {
            if g.police(i as f64 / pcr) == Conforming {
                conforming += 1;
            }
        }
        assert_eq!(conforming, mbs, "exactly MBS cells admitted at peak");
    }

    #[test]
    fn dual_gcra_updates_atomically() {
        // PCR 1 cell/s (no CDVT), SCR 0.5 cells/s with tau admitting a
        // 2-cell burst.
        let pcr = Gcra::new(1.0, 0.0);
        let scr = Gcra::new(2.0, 1.0);
        let mut dual = Gcra::dual(pcr, scr);
        assert_eq!(dual.police(0.0), Conforming);
        // Violates PCR (too early) even though SCR would pass:
        assert_eq!(dual.police(0.5), NonConforming);
        // Because the violation updated nothing, this conforms:
        assert_eq!(dual.police(1.0), Conforming);
        // Now SCR bucket is at TAT=4, tau=1: next conforming time is 3.
        assert_eq!(dual.police(2.0), NonConforming);
        assert_eq!(dual.police(3.0), Conforming);
    }

    #[test]
    fn policing_smoothed_video_frame() {
        // A 500-cell frame smoothed over 40 ms is a 12500 cells/s burst; a
        // PCR policer at exactly that rate admits every cell.
        let cells = 500;
        let ts = 0.04;
        let mut g = Gcra::peak_rate(cells as f64 / ts, 1e-9);
        let mut ok = 0;
        for j in 0..cells {
            if g.police(j as f64 * ts / cells as f64) == GcraOutcome::Conforming {
                ok += 1;
            }
        }
        assert_eq!(ok, cells);
    }

    #[test]
    fn reset_restores_pristine_state() {
        let mut g = Gcra::new(1.0, 0.0);
        assert_eq!(g.police(0.0), Conforming);
        assert_eq!(g.police(0.1), NonConforming);
        g.reset();
        assert_eq!(g.police(0.0), Conforming);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_increment() {
        Gcra::new(0.0, 1.0);
    }
}

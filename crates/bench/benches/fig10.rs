//! Fig. 10: accuracy of the two large-buffer asymptotics (Bahadur-Rao and
//! large-N) against simulation for the DAR(1) model matched to Z^0.975.

use vbr_core::experiments::{fig10, linear_buffer_grid, SimScale};

fn main() {
    // The fig-10 model is a DAR(1) — two orders of magnitude cheaper to
    // simulate than the FBNDP composites — so the default scale here is
    // generous even on one core.
    let mut scale = SimScale::from_env();
    if std::env::var("VBR_FULL").map(|v| v != "1").unwrap_or(true) {
        scale = SimScale { frames: 150_000, replications: 12 };
    }
    vbr_bench::preamble(
        "Figure 10: B-R vs large-N asymptotics vs simulation, DAR(1)~Z^0.975",
        &format!(
            "scale: {} replications x {} frames (VBR_FULL=1 for paper scale)\n\
             Expected: curves parallel; B-R about one order tighter than large-N;\n\
             both upper-bound the finite-buffer CLR.",
            scale.replications, scale.frames
        ),
    );
    let grid = linear_buffer_grid(0.5, 6.0, 8);
    let series = match fig10(&grid, scale) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fig10 simulation failed: {e}");
            std::process::exit(1);
        }
    };
    vbr_bench::emit("fig10", "probability vs buffer (msec)", "buffer_ms", &series);
}

//! Fig. 2: sample paths of Z^0.7 vs its matched DAR(1), 10 sources
//! multiplexed. The Z path shows burst-within-burst structure; the DAR(1)
//! path matches the fast time scale only.

use vbr_core::experiments::fig2;
use vbr_stats::{aggregated_variance_hurst, Moments};

fn main() {
    vbr_bench::preamble(
        "Figure 2: aggregate sample paths of Z^0.7 and matched DAR(1), N = 10",
        "",
    );
    let series = fig2(65_536, 1996);
    // The figure itself is a path plot; print summary statistics that carry
    // its message (same mean/variance, very different Hurst).
    for s in &series {
        let ys: Vec<f64> = s.points.iter().map(|&(_, y)| y).collect();
        let mut m = Moments::new();
        m.extend(&ys);
        let h = aggregated_variance_hurst(&ys);
        println!(
            "{:<16} mean {:8.1}  sd {:7.1}  aggregated-variance H = {:.3}",
            s.label,
            m.mean(),
            m.sd(),
            h.h
        );
    }
    // Emit a short window of the raw paths for plotting.
    let window: Vec<_> = series
        .iter()
        .map(|s| vbr_core::experiments::Series {
            label: s.label.clone(),
            points: s.points[..2000].to_vec(),
        })
        .collect();
    vbr_bench::emit("fig2", "first 2000 frames of each path", "frame", &window);
}

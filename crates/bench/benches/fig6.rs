//! Fig. 6: B-R BOP of Z^a vs its DAR(p) fits vs L over the practical range.

use vbr_core::experiments::{fig6, linear_buffer_grid};

fn main() {
    vbr_bench::preamble(
        "Figure 6: efficacy of Markov models — Z^a vs DAR(1..3) vs L",
        "Expected: DAR(p) approaches Z from below as p grows; DAR(1) beats L\n\
         in the practical (small-buffer) region; for Z^0.7 all curves within\n\
         about one order of magnitude at CLR 1e-6.",
    );
    let grid = linear_buffer_grid(0.1, 30.0, 25);
    for (panel, a) in [("a", 0.975), ("b", 0.7)] {
        let series = fig6(a, &grid);
        vbr_bench::emit(
            &format!("fig6{panel}"),
            &format!("panel ({panel}): Z^{a} vs DAR(p) vs L"),
            "buffer_ms",
            &series,
        );
    }
}

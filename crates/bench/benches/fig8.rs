//! Fig. 8: simulated finite-buffer CLR of V^v and Z^a.
//! Default scale resolves CLR to ~1e-6; VBR_FULL=1 runs the paper's
//! 60 x 500k protocol.

use vbr_core::experiments::{fig8, linear_buffer_grid, SimScale};

fn main() {
    let scale = SimScale::from_env();
    vbr_bench::preamble(
        "Figure 8: simulated CLRs of V^v and Z^a (N = 30, c = 538)",
        &format!(
            "scale: {} replications x {} frames (VBR_FULL=1 for paper scale)\n\
             Expected: common zero-buffer intercept ~1.1e-5; V^v cluster; Z^a fan out.",
            scale.replications, scale.frames
        ),
    );
    // At the reduced default scale only the small-buffer region has
    // resolvable loss (LRD losses cluster in rare excursions; the paper's
    // 60 x 500k protocol exists precisely to see the tail). VBR_FULL=1
    // extends the measurable range to the paper's 0-16 ms.
    let grid = if std::env::var("VBR_FULL").map(|v| v == "1").unwrap_or(false) {
        linear_buffer_grid(0.0001, 16.0, 9)
    } else {
        linear_buffer_grid(0.0001, 2.0, 7)
    };
    let series = match fig8(&grid, scale) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fig8 simulation failed: {e}");
            std::process::exit(1);
        }
    };
    vbr_bench::emit("fig8", "simulated CLR vs buffer (msec)", "buffer_ms", &series);
}

//! Fig. 8 extension: CLR vs buffer for the two model families the paper's
//! authors never tried — the Clegg–Dodson Markov-chain LRD generator and
//! the multifractal wavelet model — each at H ∈ {0.7, 0.8, 0.9} with the
//! paper's exact-LRD model `L` as the common reference curve.
//!
//! Emits `paper_output/fig8_clegg.csv` and `paper_output/fig8_mwm.csv`.

use vbr_core::experiments::{fig8_clegg, fig8_mwm, linear_buffer_grid, SimScale};

fn main() {
    let scale = SimScale::from_env();
    vbr_bench::preamble(
        "Figure 8 extension: simulated CLRs of the Clegg chain and the MWM (N = 30, c = 538)",
        &format!(
            "scale: {} replications x {} frames (VBR_FULL=1 for paper scale)\n\
             Expected: both families share L's zero-buffer intercept (same marginal\n\
             moments); the curves separate with buffer according to each family's\n\
             short-term correlation structure, not its Hurst parameter.",
            scale.replications, scale.frames
        ),
    );
    let grid = if std::env::var("VBR_FULL").map(|v| v == "1").unwrap_or(false) {
        linear_buffer_grid(0.0001, 16.0, 9)
    } else {
        linear_buffer_grid(0.0001, 2.0, 7)
    };
    let clegg = match fig8_clegg(&grid, scale) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fig8_clegg simulation failed: {e}");
            std::process::exit(1);
        }
    };
    vbr_bench::emit(
        "fig8_clegg",
        "simulated CLR vs buffer (msec), Clegg-Dodson Markov chain",
        "buffer_ms",
        &clegg,
    );
    let mwm = match fig8_mwm(&grid, scale) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fig8_mwm simulation failed: {e}");
            std::process::exit(1);
        }
    };
    vbr_bench::emit(
        "fig8_mwm",
        "simulated CLR vs buffer (msec), multifractal wavelet model",
        "buffer_ms",
        &mwm,
    );
}

//! End-to-end pipeline benchmark (`BENCH_3.json`): N = 30 FGN sources,
//! 10⁵ frames per replication, single worker thread — the replication
//! workload whose serial inner loop ISSUE 3 batches (planned FFT, shared
//! circulant spectra, block-wise superposition, batched queue sweep).
//!
//! Run with `cargo bench -p vbr-bench --bench pipeline`. Set
//! `VBR_PIPELINE_BASELINE=<seconds>` to record a pre-change baseline
//! measurement (same machine, same config) in the emitted JSON so the
//! speedup is part of the artifact. Output goes to
//! `paper_output/BENCH_3.json` (override the directory with `VBR_OUT`).

use std::time::Instant;
use vbr_models::{FgnProcess, FrameProcess};
use vbr_sim::{run, RunOptions, SimConfig};
use vbr_stats::rng::Xoshiro256PlusPlus;

fn e2e_config() -> SimConfig {
    SimConfig {
        n_sources: 30,
        capacity_per_source: 538.0,
        buffers_total: vec![
            0.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16000.0, 32000.0,
        ],
        frames_per_replication: 100_000,
        warmup_frames: 5_000,
        replications: 2,
        seed: 0xBEEF_CAFE,
        ts: 0.04,
        track_bop: false,
    }
}

/// Best-of-`reps` wall time for `f`, returning (best, all runs).
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> (f64, Vec<f64>) {
    let mut runs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        runs.push(t0.elapsed().as_secs_f64());
    }
    let best = runs.iter().copied().fold(f64::INFINITY, f64::min);
    (best, runs)
}

/// Frames/second for one model, scalar (`next_frame`) vs batched
/// (`fill_frames` in 4096-frame blocks), over `frames` total frames.
fn throughput_pair(proto: &dyn FrameProcess, frames: usize) -> (f64, f64) {
    let mut scalar = proto.boxed_clone();
    let mut rng = Xoshiro256PlusPlus::from_seed_u64(7);
    scalar.reset(&mut rng);
    let t0 = Instant::now();
    let mut acc = 0.0;
    for _ in 0..frames {
        acc += scalar.next_frame(&mut rng);
    }
    let scalar_fps = frames as f64 / t0.elapsed().as_secs_f64();

    let mut batched = proto.boxed_clone();
    let mut rng = Xoshiro256PlusPlus::from_seed_u64(7);
    batched.reset(&mut rng);
    let mut buf = vec![0.0_f64; 4096];
    let t0 = Instant::now();
    let mut done = 0;
    while done < frames {
        let take = buf.len().min(frames - done);
        batched.fill_frames(&mut buf[..take], &mut rng);
        acc += buf[0];
        done += take;
    }
    let batched_fps = frames as f64 / t0.elapsed().as_secs_f64();
    // keep `acc` alive so the generation loops can't be optimised away
    assert!(acc.is_finite());
    (scalar_fps, batched_fps)
}

fn main() {
    vbr_bench::preamble(
        "pipeline benchmark: end-to-end replication (N = 30 FGN, 1e5 frames)",
        "single-thread wall time, best of 3 runs",
    );
    let proto = FgnProcess::new(500.0, 5000.0_f64.sqrt(), 0.9, 1.0, 1 << 18);
    let cfg = e2e_config();
    let opts = RunOptions {
        threads: Some(1),
        ..RunOptions::default()
    };

    let mut clr0 = 0.0;
    let (best, runs) = best_of(3, || {
        let out = run(&proto, &cfg, &opts).expect("benchmark run");
        clr0 = out.per_buffer[0].pooled.clr();
    });
    for (i, dt) in runs.iter().enumerate() {
        println!("run {i}: {dt:.3} s (clr[0] = {clr0:.3e})");
    }
    println!("best of 3: {best:.3} s");

    let baseline = std::env::var("VBR_PIPELINE_BASELINE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok());
    if let Some(b) = baseline {
        println!("baseline: {b:.3} s  -> speedup {:.2}x", b / best);
    } else {
        println!("(set VBR_PIPELINE_BASELINE=<seconds> to record the speedup in BENCH_3.json)");
    }

    // Generator throughput: scalar vs batched for the models the figures use.
    println!("\ngenerator throughput (frames/s), scalar next_frame vs fill_frames:");
    let models: Vec<(&str, Box<dyn FrameProcess>)> = vec![
        (
            "fgn_h0.9_block256k",
            Box::new(FgnProcess::new(500.0, 5000.0_f64.sqrt(), 0.9, 1.0, 1 << 18)),
        ),
        (
            "farima_h0.9_block64k",
            Box::new(vbr_models::FarimaProcess::from_hurst(
                500.0,
                5000.0_f64.sqrt(),
                0.9,
                1 << 16,
            )),
        ),
        ("z_0.975(fbndp+dar)", Box::new(vbr_core::paper::build_z(0.975))),
        ("ar1_phi0.8", Box::new(vbr_models::GaussianAr1::new(500.0, 70.0, 0.8))),
    ];
    let mut tp_json = Vec::new();
    for (name, m) in &models {
        let (s, b) = throughput_pair(m.as_ref(), 400_000);
        println!("  {name:>22}: {s:>12.0} -> {b:>12.0}  ({:.2}x)", b / s);
        tp_json.push(format!(
            "    {{\"model\": \"{name}\", \"scalar_fps\": {s:.1}, \"batched_fps\": {b:.1}}}"
        ));
    }

    // Handcrafted JSON (no serde_json in-tree): the artifact EXPERIMENTS.md
    // points at for the ISSUE 3 acceptance criterion.
    let speedup_field = match baseline {
        Some(b) => format!(
            "  \"baseline_seconds\": {b:.3},\n  \"speedup\": {:.3},\n",
            b / best
        ),
        None => String::new(),
    };
    let json = format!(
        "{{\n  \"bench\": \"BENCH_3\",\n  \"description\": \"e2e replication: N=30 FGN (H=0.9, block 2^18), 1e5 frames/rep, 2 reps, 8 buffers, 1 thread\",\n  \"runs_seconds\": [{}],\n  \"best_seconds\": {best:.3},\n{speedup_field}  \"clr_buffer0\": {clr0:.6e},\n  \"generator_throughput\": [\n{}\n  ]\n}}\n",
        runs.iter()
            .map(|r| format!("{r:.3}"))
            .collect::<Vec<_>>()
            .join(", "),
        tp_json.join(",\n"),
    );
    match vbr_bench::ensure_out_dir() {
        Ok(dir) => {
            let path = dir.join("BENCH_3.json");
            match std::fs::write(&path, &json) {
                Ok(()) => println!("[json written to {}]", path.display()),
                Err(e) => eprintln!("[BENCH_3.json not written: {e}]"),
            }
        }
        Err(e) => eprintln!("[output dir unavailable: {e}]"),
    }
}

//! Fig. 4: Critical Time Scale m*_b vs total buffer size (msec);
//! c = 526 cells/frame, N = 100.

use vbr_core::experiments::{fig4, linear_buffer_grid};

fn main() {
    vbr_bench::preamble(
        "Figure 4: CTS m*_b vs total buffer — (a) V^v family, (b) Z^a family",
        "Expected: m*_0 small, non-decreasing in B; V^v curves nearly coincide\n\
         (same short-term correlations) while Z^a curves spread by a\n\
         (>= 15 frames apart already at B = 2 msec).",
    );
    let grid = linear_buffer_grid(0.1, 12.0, 25);
    let series = fig4(&grid);
    vbr_bench::emit("fig4", "m*_b vs total buffer (msec)", "buffer_ms", &series);
}

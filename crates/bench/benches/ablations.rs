//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. equilibrium vs naive ON/OFF initialization (stationarity bias);
//! 2. fluid frame-level vs slotted cell-level queue (accuracy + cost);
//! 3. independent replications vs batch means on LRD output;
//! 4. DAR fit order p (prediction error vs model size).

use std::time::Instant;
use vbr_core::experiments::sim_clr_series;
use vbr_core::paper;
use vbr_models::{FractalOnOff, FrameProcess, HeavyTailedSojourn};
use vbr_sim::{CellMultiplexer, FluidQueue};
use vbr_stats::rng::Xoshiro256PlusPlus;
use vbr_stats::BatchMeans;

fn main() {
    vbr_bench::preamble("ablation studies (DESIGN.md section 5)", "");
    init_bias();
    fluid_vs_cell();
    replications_vs_batch_means();
    dar_order();
}

/// 1. Initialization bias. The ON *probability* is ½ either way; what the
///    naive start destroys is the low-frequency structure: started fresh, no
///    process can be sitting inside one of the rare long sojourns, so the
///    ensemble correlation between early frames collapses. Measured as the
///    Pearson correlation of (frame-0 ON time, frame-20 ON time) across
///    independent starts.
fn init_bias() {
    println!("\n--- ablation 1: ON/OFF initialization ---");
    let sojourn = HeavyTailedSojourn::from_alpha(0.8, 0.002);
    let mut rng = Xoshiro256PlusPlus::from_seed_u64(1);
    let reps = 60_000;
    let ts = 0.04;
    let gap_frames = 20;

    let mut run = |naive: bool| -> f64 {
        let mut xs = Vec::with_capacity(reps);
        let mut ys = Vec::with_capacity(reps);
        for _ in 0..reps {
            let mut p = FractalOnOff::new(sojourn);
            if naive {
                p.reset_naive(&mut rng);
            } else {
                p.reset(&mut rng);
            }
            let first = p.on_time(ts, &mut rng);
            for _ in 0..gap_frames - 1 {
                p.on_time(ts, &mut rng);
            }
            let later = p.on_time(ts, &mut rng);
            xs.push(first);
            ys.push(later);
        }
        pearson(&xs, &ys)
    };
    let eq = run(false);
    let nv = run(true);
    println!("ensemble corr(frame 0 ON time, frame {gap_frames} ON time):");
    println!("  equilibrium start: {eq:.4}   (stationary lag-{gap_frames} ACF)");
    println!("  naive start:       {nv:.4}");
    println!("the naive start forgets the long residual sojourns and loses");
    println!("low-frequency correlation in the measurement window.");
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs.iter().zip(ys).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|&x| (x - mx).powi(2)).sum();
    let vy: f64 = ys.iter().map(|&y| (y - my).powi(2)).sum();
    cov / (vx * vy).sqrt()
}

/// 2. Same arrivals through both queue models: CLR agreement and runtime.
fn fluid_vs_cell() {
    println!("\n--- ablation 2: fluid vs cell-level queue ---");
    let proto = paper::build_z(0.99);
    let mut rng = Xoshiro256PlusPlus::from_seed_u64(2);
    let n = 30;
    let frames = 12_000;
    let mut sources: Vec<Box<dyn FrameProcess>> =
        (0..n).map(|_| proto.boxed_clone()).collect();
    for s in sources.iter_mut() {
        s.reset(&mut rng);
    }
    let rows: Vec<Vec<f64>> = (0..frames)
        .map(|_| sources.iter_mut().map(|s| s.next_frame(&mut rng)).collect())
        .collect();

    // Slightly tighter bandwidth than the paper's (c = 520) so losses are
    // frequent enough to compare on a short single-core run.
    let capacity = n as f64 * 520.0;
    let buffer = 780.0; // 2 ms at this rate

    let t = Instant::now();
    let mut fluid = FluidQueue::finite(capacity, buffer);
    for row in &rows {
        fluid.offer(row.iter().sum());
    }
    let fluid_time = t.elapsed();

    let t = Instant::now();
    let mut cell = CellMultiplexer::new(capacity as usize, buffer as usize);
    for row in &rows {
        cell.offer_frame(row);
    }
    let cell_time = t.elapsed();

    println!(
        "fluid:      CLR {:.3e}   {:>10.2?} for {frames} frames",
        fluid.account().clr(),
        fluid_time
    );
    println!(
        "cell-level: CLR {:.3e}   {:>10.2?} ({}x slower)",
        cell.clr(),
        cell_time,
        (cell_time.as_nanos().max(1) / fluid_time.as_nanos().max(1))
    );
}

/// 3. Output analysis: batch means on one long LRD run vs the paper's
///    independent replications — the batch-lag1 diagnostic shows why the
///    paper replicates.
fn replications_vs_batch_means() {
    println!("\n--- ablation 3: replications vs batch means (LRD output) ---");
    let mut z = paper::build_z(0.975);
    let mut rng = Xoshiro256PlusPlus::from_seed_u64(3);
    z.reset(&mut rng);
    let series: Vec<f64> = (0..60_000).map(|_| z.next_frame(&mut rng)).collect();
    let bm = BatchMeans::sqrt_rule(&series);
    println!(
        "single 60k-frame run: mean {:.1}, batch-means 95% hw {:.2}, batch lag-1 corr {:.2}",
        bm.mean,
        bm.interval(0.95).half_width,
        bm.batch_lag1()
    );
    println!("batch lag-1 far from 0 => batches are NOT independent under LRD;");
    println!("the paper's 60 independent replications avoid this failure mode.");
}

/// 4. DAR(p) order: B-R log-error vs Z^0.975 at 2 ms as p grows.
fn dar_order() {
    println!("\n--- ablation 4: DAR fit order ---");
    use vbr_asymptotics::{bahadur_rao_bop, SourceStats};
    let z = paper::build_z(0.975);
    let zs = SourceStats::from_process(&z, 32_768);
    let b = vbr_asymptotics::bop::buffer_from_delay_ms(2.0, 538.0, paper::TS);
    let z_bop = bahadur_rao_bop(&zs, 538.0, b, 30);
    println!("Z^0.975 B-R BOP at 2 ms: {z_bop:.3e}");
    for p in 1..=3 {
        let s = paper::build_s(0.975, p);
        let ss = SourceStats::from_process(&s, 32_768);
        let bop = bahadur_rao_bop(&ss, 538.0, b, 30);
        println!(
            "DAR({p}): BOP {bop:.3e}  (log10 error {:.2})",
            (z_bop.log10() - bop.log10()).abs()
        );
    }
    let _ = sim_clr_series; // sim comparison lives in fig9
}

//! Observability overhead benchmark (`BENCH_4.json`): the BENCH_3 e2e
//! replication workload (N = 30 FGN, 10⁵ frames/rep, 2 reps, 8 buffers,
//! 1 thread) run three ways:
//!
//! * `recorder_off` — instrumentation compiled in but no recorder attached.
//!   This is the always-on production path; the acceptance criterion is
//!   < 1% overhead vs the PR 3 baseline (`paper_output/BENCH_3.json`
//!   `best_seconds`, or `VBR_OBS_BASELINE=<seconds>` to override).
//! * `recorder_memory` — full in-memory recorder: every event, batch-level
//!   metrics, span timing on every worker thread.
//! * `recorder_telemetry` — the `Telemetry::to_dir` sink stack (JSONL +
//!   Prometheus + summary files), i.e. what `--telemetry <dir>` costs.
//!
//! Run with `cargo bench -p vbr-bench --bench obs_overhead`. Output goes to
//! `paper_output/BENCH_4.json` (override the directory with `VBR_OUT`).

use std::sync::Arc;
use std::time::Instant;
use vbr_models::FgnProcess;
use vbr_obs::{MemoryRecorder, Recorder, Telemetry};
use vbr_sim::{run, RunOptions, SimConfig};

fn e2e_config() -> SimConfig {
    // Identical to the BENCH_3 pipeline config so the overhead numbers are
    // directly comparable to the PR 3 baseline.
    SimConfig {
        n_sources: 30,
        capacity_per_source: 538.0,
        buffers_total: vec![
            0.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16000.0, 32000.0,
        ],
        frames_per_replication: 100_000,
        warmup_frames: 5_000,
        replications: 2,
        seed: 0xBEEF_CAFE,
        ts: 0.04,
        track_bop: false,
    }
}

/// Best-of-`reps` wall time for `f`, returning (best, all runs).
fn best_of<F: FnMut()>(reps: usize, mut f: F) -> (f64, Vec<f64>) {
    let mut runs = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        runs.push(t0.elapsed().as_secs_f64());
    }
    let best = runs.iter().copied().fold(f64::INFINITY, f64::min);
    (best, runs)
}

fn timed_variant(
    name: &str,
    proto: &FgnProcess,
    cfg: &SimConfig,
    recorder: impl Fn() -> Option<Arc<dyn Recorder>>,
) -> (f64, Vec<f64>, f64) {
    let mut clr0 = 0.0;
    let (best, runs) = best_of(3, || {
        let opts = RunOptions {
            threads: Some(1),
            recorder: recorder(),
            ..RunOptions::default()
        };
        let out = run(proto, cfg, &opts).expect("benchmark run");
        clr0 = out.per_buffer[0].pooled.clr();
    });
    for (i, dt) in runs.iter().enumerate() {
        println!("  {name} run {i}: {dt:.3} s");
    }
    println!("  {name} best of 3: {best:.3} s (clr[0] = {clr0:.3e})");
    (best, runs, clr0)
}

/// The PR 3 reference time: `VBR_OBS_BASELINE` if set, else `best_seconds`
/// parsed out of `paper_output/BENCH_3.json` if present.
fn baseline_seconds() -> Option<f64> {
    if let Some(s) = std::env::var("VBR_OBS_BASELINE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
    {
        return Some(s);
    }
    let body = std::fs::read_to_string(vbr_bench::out_dir().join("BENCH_3.json")).ok()?;
    let tail = body.split("\"best_seconds\":").nth(1)?;
    tail.split([',', '\n', '}'])
        .next()?
        .trim()
        .parse()
        .ok()
}

fn main() {
    vbr_bench::preamble(
        "observability overhead: BENCH_3 e2e workload, recorder off/on",
        "single-thread wall time, best of 3 runs per variant",
    );
    let proto = FgnProcess::new(500.0, 5000.0_f64.sqrt(), 0.9, 1.0, 1 << 18);
    let cfg = e2e_config();

    let (off_best, off_runs, clr_off) = timed_variant("recorder_off", &proto, &cfg, || None);
    let (mem_best, mem_runs, clr_mem) = timed_variant("recorder_memory", &proto, &cfg, || {
        Some(Arc::new(MemoryRecorder::new()) as Arc<dyn Recorder>)
    });
    let tel_dir = std::env::temp_dir().join("vbr_bench4_telemetry");
    let (tel_best, tel_runs, clr_tel) = timed_variant("recorder_telemetry", &proto, &cfg, || {
        Telemetry::to_dir(&tel_dir).ok()
    });
    let _ = std::fs::remove_dir_all(&tel_dir);

    assert_eq!(
        clr_off.to_bits(),
        clr_mem.to_bits(),
        "recorder must not perturb results"
    );
    assert_eq!(clr_off.to_bits(), clr_tel.to_bits());

    let mem_pct = (mem_best / off_best - 1.0) * 100.0;
    let tel_pct = (tel_best / off_best - 1.0) * 100.0;
    println!("\nenabled overhead vs recorder_off: memory {mem_pct:+.2}%, telemetry {tel_pct:+.2}%");

    let baseline = baseline_seconds();
    let baseline_field = match baseline {
        Some(b) => {
            let pct = (off_best / b - 1.0) * 100.0;
            println!("recorder_off vs PR 3 baseline {b:.3} s: {pct:+.2}% (criterion: < 1%)");
            format!(
                "  \"baseline_seconds\": {b:.3},\n  \"disabled_overhead_pct\": {pct:.3},\n"
            )
        }
        None => {
            println!("(no PR 3 baseline found; set VBR_OBS_BASELINE=<seconds> or write BENCH_3.json first)");
            String::new()
        }
    };

    let fmt_runs = |runs: &[f64]| {
        runs.iter()
            .map(|r| format!("{r:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let json = format!(
        "{{\n  \"bench\": \"BENCH_4\",\n  \"description\": \"obs overhead on the BENCH_3 e2e workload: N=30 FGN (H=0.9, block 2^18), 1e5 frames/rep, 2 reps, 8 buffers, 1 thread\",\n  \"recorder_off_runs_seconds\": [{}],\n  \"recorder_off_best_seconds\": {off_best:.3},\n{baseline_field}  \"recorder_memory_runs_seconds\": [{}],\n  \"recorder_memory_best_seconds\": {mem_best:.3},\n  \"recorder_memory_overhead_pct\": {mem_pct:.3},\n  \"recorder_telemetry_runs_seconds\": [{}],\n  \"recorder_telemetry_best_seconds\": {tel_best:.3},\n  \"recorder_telemetry_overhead_pct\": {tel_pct:.3},\n  \"clr_buffer0\": {clr_off:.6e},\n  \"results_bit_identical\": true\n}}\n",
        fmt_runs(&off_runs),
        fmt_runs(&mem_runs),
        fmt_runs(&tel_runs),
    );
    match vbr_bench::ensure_out_dir() {
        Ok(dir) => {
            let path = dir.join("BENCH_4.json");
            match std::fs::write(&path, &json) {
                Ok(()) => println!("[json written to {}]", path.display()),
                Err(e) => eprintln!("[BENCH_4.json not written: {e}]"),
            }
        }
        Err(e) => eprintln!("[output dir unavailable: {e}]"),
    }
}

//! Regenerates the paper's Table 1 (model parameter specification) from the
//! first-principles solvers, annotating each derived value with the value
//! the paper prints.

use vbr_core::experiments::table1;

fn main() {
    vbr_bench::preamble(
        "Table 1: specification of model parameters of V^v, Z^a, S, and L",
        "Every value below is *derived* (lambda, T0, a(v), DAR fits, alpha_L);\n\
         paper-printed values shown for comparison where available.",
    );
    println!(
        "{:<28} {:>6} {:>7} {:>10} {:>12} {:>9} {:>4}  lag probs",
        "model", "v", "alpha", "a|rho", "lambda c/s", "T0 msec", "M"
    );
    for row in table1() {
        println!(
            "{:<28} {:>6} {:>7} {:>10} {:>12} {:>9} {:>4}  {}",
            row.model,
            row.v.map(|v| format!("{v}")).unwrap_or_default(),
            row.alpha.map(|a| format!("{a:.4}")).unwrap_or_default(),
            row.a_or_rho.map(|a| format!("{a:.6}")).unwrap_or_default(),
            row.lambda.map(|l| format!("{l:.0}")).unwrap_or_default(),
            row.t0_ms.map(|t| format!("{t:.3}")).unwrap_or_default(),
            row.m.map(|m| format!("{m}")).unwrap_or_default(),
            row.lag_probs
                .map(|p| p.iter().map(|x| format!("{x:.3}")).collect::<Vec<_>>().join(" "))
                .unwrap_or_default(),
        );
    }
    println!();
    println!("Paper Table 1 reference values:");
    println!("  V^v:  a = 0.799761 / 0.8 / 0.800362, lambda = 5000/6250/7500, T0 = 3.48 ms, M = 15");
    println!("  Z^a:  alpha = 0.8, lambda = 6250, T0 = 2.57 ms, M = 15");
    println!("  L:    alpha = 0.72, lambda = 12500, T0 = 1.83 ms, M = 30");
    println!("  S(Z^0.7):   DAR(1) rho=0.68 | DAR(2) rho=0.72 (0.84,0.16) | DAR(3) rho=0.73 (0.82,0.10,0.08)");
    println!("  S(Z^0.975): DAR(1) rho=0.82 | DAR(2) rho=0.87 (0.70,0.30) | DAR(3) rho=0.89 (0.63,0.18,0.19)");
}

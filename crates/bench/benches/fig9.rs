//! Fig. 9: simulated CLR of Z^a vs its DAR(p) fits vs L.

use vbr_core::experiments::{fig9, linear_buffer_grid, SimScale};

fn main() {
    let scale = SimScale::from_env();
    vbr_bench::preamble(
        "Figure 9: simulated CLRs — Z^a vs matched DAR(p) vs L (N = 30, c = 538)",
        &format!(
            "scale: {} replications x {} frames (VBR_FULL=1 for paper scale)",
            scale.replications, scale.frames
        ),
    );
    let grid = if std::env::var("VBR_FULL").map(|v| v == "1").unwrap_or(false) {
        linear_buffer_grid(0.0001, 16.0, 9)
    } else {
        linear_buffer_grid(0.0001, 2.0, 7)
    };
    for (panel, a) in [("a", 0.975), ("b", 0.7)] {
        let series = match fig9(a, &grid, scale) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fig9 panel ({panel}) simulation failed: {e}");
                std::process::exit(1);
            }
        };
        vbr_bench::emit(
            &format!("fig9{panel}"),
            &format!("panel ({panel}): Z^{a} vs DAR(p) vs L, simulation"),
            "buffer_ms",
            &series,
        );
    }
}

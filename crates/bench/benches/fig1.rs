//! Fig. 1: effect of the knobs a (short-term) and v (long-term) on the
//! composite autocorrelation function.

use vbr_core::experiments::fig1;

fn main() {
    vbr_bench::preamble(
        "Figure 1: effect of a and v on the ACF of Z^a and V^v",
        "Expected shape: a moves the small-lag ACF, v rescales the power-law tail.",
    );
    let series = fig1(64);
    vbr_bench::emit("fig1", "ACF vs lag (1..64)", "lag", &series);
}

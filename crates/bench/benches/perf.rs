//! Criterion performance benches + the ablation measurements DESIGN.md
//! calls out: fluid vs cell-level queue cost, generator throughput per
//! model, CTS search and Yule-Walker fit cost.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use vbr_asymptotics::cts::critical_time_scale_with;
use vbr_asymptotics::{SourceStats, VarianceFunction};
use vbr_core::matching::fit_dar;
use vbr_core::paper;
use vbr_models::{CirculantScratch, FgnGenerator, FrameProcess, Marginal};
use vbr_sim::{CellMultiplexer, FluidQueue};
use vbr_stats::rng::Xoshiro256PlusPlus;

fn generator_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.throughput(Throughput::Elements(1));

    let mut rng = Xoshiro256PlusPlus::from_seed_u64(1);

    let mut dar = paper::build_s(0.975, 1);
    group.bench_function("dar1_frame", |b| {
        b.iter(|| dar.next_frame(&mut rng));
    });

    let mut z = paper::build_z(0.975);
    group.bench_function("z_frame(fbndp+dar)", |b| {
        b.iter(|| z.next_frame(&mut rng));
    });

    let mut l = paper::build_l();
    group.bench_function("l_frame(fbndp_m30)", |b| {
        b.iter(|| l.next_frame(&mut rng));
    });
    group.finish();

    let mut group = c.benchmark_group("fgn");
    let gen = FgnGenerator::new(0.9, 1.0, 16_384);
    group.throughput(Throughput::Elements(16_384));
    group.bench_function("davies_harte_block_16k", |b| {
        b.iter(|| gen.generate(&mut rng));
    });
    group.bench_function("davies_harte_block_16k_into", |b| {
        let mut scratch = CirculantScratch::new();
        let mut out = vec![0.0_f64; 16_384];
        b.iter(|| gen.generate_into(&mut rng, &mut scratch, &mut out));
    });
    group.finish();
}

/// Batched vs scalar generation (`fill_frames` vs `next_frame`) for the
/// models the pipeline batches — the per-model half of the ISSUE 3 speedup.
fn batched_generation(c: &mut Criterion) {
    const FRAMES: usize = 4_096;
    let mut rng = Xoshiro256PlusPlus::from_seed_u64(3);
    let mut buf = vec![0.0_f64; FRAMES];

    let mut group = c.benchmark_group("batched_generation");
    group.throughput(Throughput::Elements(FRAMES as u64));

    let mut fgn = vbr_models::FgnProcess::new(500.0, 70.0, 0.9, 1.0, 16_384);
    group.bench_function("fgn_scalar_4k", |b| {
        b.iter(|| (0..FRAMES).map(|_| fgn.next_frame(&mut rng)).sum::<f64>());
    });
    group.bench_function("fgn_batched_4k", |b| {
        b.iter(|| fgn.fill_frames(&mut buf, &mut rng));
    });

    let mut z = paper::build_z(0.975);
    group.bench_function("z_scalar_4k", |b| {
        b.iter(|| (0..FRAMES).map(|_| z.next_frame(&mut rng)).sum::<f64>());
    });
    group.bench_function("z_batched_4k", |b| {
        b.iter(|| z.fill_frames(&mut buf, &mut rng));
    });

    let mut ar = vbr_models::GaussianAr1::new(500.0, 70.0, 0.8);
    group.bench_function("ar1_batched_4k", |b| {
        b.iter(|| ar.fill_frames(&mut buf, &mut rng));
    });
    group.finish();
}

/// A small end-to-end replication through the batched runner hot loop —
/// the whole-pipeline half of the ISSUE 3 speedup, sized for criterion.
fn e2e_replication(c: &mut Criterion) {
    use vbr_sim::{run, RunOptions, SimConfig};
    let proto = vbr_models::FgnProcess::new(500.0, 70.0, 0.9, 1.0, 1 << 14);
    let cfg = SimConfig {
        n_sources: 10,
        capacity_per_source: 538.0,
        buffers_total: vec![0.0, 1000.0, 8000.0],
        frames_per_replication: 20_000,
        warmup_frames: 1_000,
        replications: 1,
        seed: 0xBEEF,
        ts: 0.04,
        track_bop: false,
    };
    let opts = RunOptions {
        threads: Some(1),
        ..RunOptions::default()
    };
    let mut group = c.benchmark_group("e2e");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cfg.frames_per_replication as u64));
    group.bench_function("replication_fgn_n10_20k", |b| {
        b.iter(|| run(&proto, &cfg, &opts).expect("bench run"));
    });
    group.finish();
}

/// Observability overhead on the e2e replication path: the recorder-less
/// run (every instrumentation point compiled in but gated off — the
/// always-on production path, required to be < 1% over the PR 3 baseline)
/// vs the same run with a full in-memory recorder attached.
fn obs_overhead(c: &mut Criterion) {
    use std::sync::Arc;
    use vbr_obs::MemoryRecorder;
    use vbr_sim::{run, RunOptions, SimConfig};
    let proto = vbr_models::FgnProcess::new(500.0, 70.0, 0.9, 1.0, 1 << 14);
    let cfg = SimConfig {
        n_sources: 10,
        capacity_per_source: 538.0,
        buffers_total: vec![0.0, 1000.0, 8000.0],
        frames_per_replication: 20_000,
        warmup_frames: 1_000,
        replications: 1,
        seed: 0xBEEF,
        ts: 0.04,
        track_bop: false,
    };
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cfg.frames_per_replication as u64));
    let disabled = RunOptions {
        threads: Some(1),
        ..RunOptions::default()
    };
    group.bench_function("e2e_recorder_off", |b| {
        b.iter(|| run(&proto, &cfg, &disabled).expect("bench run"));
    });
    group.bench_function("e2e_recorder_memory", |b| {
        b.iter(|| {
            let opts = RunOptions {
                threads: Some(1),
                recorder: Some(Arc::new(MemoryRecorder::new())),
                ..RunOptions::default()
            };
            run(&proto, &cfg, &opts).expect("bench run")
        });
    });
    group.finish();
}

fn queue_ablation(c: &mut Criterion) {
    // DESIGN.md ablation: the fluid frame-level queue vs the slotted
    // cell-level queue on identical arrivals (N = 30, c = 538).
    let mut rng = Xoshiro256PlusPlus::from_seed_u64(2);
    let mut proto = vbr_models::IidProcess::new(Marginal::paper_gaussian());
    let frames: Vec<f64> = (0..2_000)
        .map(|_| (0..30).map(|_| proto.next_frame(&mut rng)).sum::<f64>())
        .collect();
    let per_source: Vec<Vec<f64>> = (0..2_000)
        .map(|_| (0..30).map(|_| proto.next_frame(&mut rng)).collect())
        .collect();

    let mut group = c.benchmark_group("queue_ablation");
    group.throughput(Throughput::Elements(2_000));
    group.bench_function("fluid_2k_frames", |b| {
        b.iter_batched(
            || FluidQueue::finite(30.0 * 538.0, 2_000.0),
            |mut q| {
                for &x in &frames {
                    q.offer(x);
                }
                q.account()
            },
            BatchSize::SmallInput,
        );
    });
    group.bench_function("cell_level_2k_frames", |b| {
        b.iter_batched(
            || CellMultiplexer::new(30 * 538, 2_000),
            |mut q| {
                for row in &per_source {
                    q.offer_frame(row);
                }
                q.lost()
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn analysis_cost(c: &mut Criterion) {
    let z = paper::build_z(0.975);
    let stats = SourceStats::from_process(&z, 32_768);

    let mut group = c.benchmark_group("analysis");
    group.bench_function("variance_function_32k", |b| {
        b.iter(|| VarianceFunction::new(&stats));
    });

    let v = VarianceFunction::new(&stats);
    group.bench_function("cts_search", |b| {
        b.iter(|| critical_time_scale_with(&v, stats.mean, 538.0, 300.0));
    });

    let acf = z.autocorrelations(8);
    group.bench_function("dar3_yule_walker_fit", |b| {
        b.iter(|| fit_dar(&acf, 3, Marginal::paper_gaussian()).unwrap());
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = generator_throughput, batched_generation, e2e_replication, obs_overhead, queue_ablation, analysis_cost
}
criterion_main!(benches);

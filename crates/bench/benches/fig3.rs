//! Fig. 3: analytic autocorrelation functions of all model families.

use vbr_core::experiments::fig3;

fn main() {
    vbr_bench::preamble(
        "Figure 3: analytic ACFs — (a) V^v, (b) Z^a and L, (c,d) DAR(p) vs Z^a",
        "Expected: (a) V^v short lags coincide; (b) Z^a and L tails align to 1000 lags;\n\
         (c,d) DAR(p) matches the first p lags then decays geometrically.",
    );
    let series = fig3(1000);
    vbr_bench::emit("fig3", "ACF vs lag", "lag", &series);
}

//! Fig. 5: Bahadur-Rao BOP vs buffer over the practical range;
//! N = 30, c = 538 cells/frame.

use vbr_core::experiments::{fig5, linear_buffer_grid};

fn main() {
    vbr_bench::preamble(
        "Figure 5: B-R BOPs — (a) V^v (cluster), (b) Z^a (fan-out by a)",
        "Expected: close short-term correlations -> close loss curves;\n\
         stronger short-term correlations -> slower decay.",
    );
    let grid = linear_buffer_grid(0.1, 30.0, 25);
    let series = fig5(&grid);
    vbr_bench::emit("fig5", "BOP vs buffer (msec)", "buffer_ms", &series);
}

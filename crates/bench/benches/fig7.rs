//! Fig. 7: the same comparison over an unrealistically wide buffer range —
//! where the two "myths" come from.

use vbr_core::experiments::{fig7, fig7_crossover, log_buffer_grid};

fn main() {
    vbr_bench::preamble(
        "Figure 7: Z^a vs DAR(p) vs L over a wide buffer range",
        "Expected: L eventually overtakes every DAR(p), but only beyond the\n\
         practical 20-30 ms delay budget (for p >= 2).",
    );
    let grid = log_buffer_grid(0.5, 2000.0, 30);
    for (panel, a) in [("a", 0.975), ("b", 0.7)] {
        let series = fig7(a, &grid);
        vbr_bench::emit(
            &format!("fig7{panel}"),
            &format!("panel ({panel}): Z^{a} vs DAR(p) vs L, wide range"),
            "buffer_ms",
            &series,
        );
        for p in 1..=3 {
            match fig7_crossover(a, p, &grid) {
                Some(ms) => println!("  L overtakes DAR({p}) for Z^{a} at ~{ms:.1} msec"),
                None => println!("  L never overtakes DAR({p}) for Z^{a} within the grid"),
            }
        }
    }
}

//! Shared output plumbing for the figure-regeneration bench targets.
//!
//! Every bench target (`cargo bench -p vbr-bench --bench figN`) prints the
//! regenerated table/figure to stdout in the paper's row/series layout and
//! also writes a CSV under `paper_output/` (override with `VBR_OUT`), so the
//! EXPERIMENTS.md comparisons can be re-generated mechanically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::io;
use std::io::Write;
use std::path::PathBuf;
use vbr_core::experiments::Series;

/// Output directory for CSVs: `VBR_OUT` env var if set, otherwise
/// `paper_output/` at the *workspace root* (cargo bench runs with the
/// package directory as CWD, which is not where anyone would look).
pub fn out_dir() -> PathBuf {
    let path = match std::env::var("VBR_OUT") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => {
            let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
            manifest
                .parent()
                .and_then(|p| p.parent())
                .map(|ws| ws.join("paper_output"))
                .unwrap_or_else(|| PathBuf::from("paper_output"))
        }
    };
    path
}

/// [`out_dir`], created on disk. Fails with the underlying I/O error rather
/// than panicking (an unwritable output dir should cost the CSV, not the
/// regenerated figure that took an hour of simulation).
pub fn ensure_out_dir() -> io::Result<PathBuf> {
    let path = out_dir();
    fs::create_dir_all(&path)?;
    Ok(path)
}

/// Prints a set of series sharing an x-grid as an aligned table and writes
/// `<name>.csv` into [`out_dir`]. A failed CSV write is reported on stderr
/// but does not abort — the printed table is the primary artifact.
pub fn emit(name: &str, title: &str, x_label: &str, series: &[Series]) {
    match try_emit(name, title, x_label, series) {
        Ok(path) => println!("[csv written to {}]", path.display()),
        Err(e) => eprintln!("[csv for {name} not written: {e}]"),
    }
}

/// [`emit`] with the I/O outcome propagated; returns the CSV path written.
pub fn try_emit(
    name: &str,
    title: &str,
    x_label: &str,
    series: &[Series],
) -> io::Result<PathBuf> {
    println!("\n=== {title} ===");
    print!("{x_label:>12}");
    for s in series {
        print!("  {:>14}", truncate(&s.label, 14));
    }
    println!();
    let rows = series.iter().map(|s| s.points.len()).max().unwrap_or(0);
    for i in 0..rows {
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|p| p.0))
            .unwrap_or(f64::NAN);
        print!("{x:>12.4}");
        for s in series {
            match s.points.get(i) {
                Some(&(_, y)) => print!("  {y:>14.6e}"),
                None => print!("  {:>14}", "-"),
            }
        }
        println!();
    }

    let path = ensure_out_dir()?.join(format!("{name}.csv"));
    let mut f = fs::File::create(&path)?;
    write!(f, "{x_label}")?;
    for s in series {
        write!(f, ",{}", s.label.replace(',', ";"))?;
    }
    writeln!(f)?;
    for i in 0..rows {
        let x = series
            .iter()
            .find_map(|s| s.points.get(i).map(|p| p.0))
            .unwrap_or(f64::NAN);
        write!(f, "{x}")?;
        for s in series {
            match s.points.get(i) {
                Some(&(_, y)) => write!(f, ",{y}")?,
                None => write!(f, ",")?,
            }
        }
        writeln!(f)?;
    }
    Ok(path)
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        s.chars().take(n.saturating_sub(1)).collect::<String>() + "~"
    }
}

/// Standard preamble: prints what the target reproduces and at what scale.
pub fn preamble(what: &str, note: &str) {
    println!("----------------------------------------------------------------");
    println!("Reproducing {what}");
    println!("(Ryu & Elwalid, SIGCOMM '96 — LRD of VBR video: myths & realities)");
    if !note.is_empty() {
        println!("{note}");
    }
    println!("----------------------------------------------------------------");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncate_behaviour() {
        assert_eq!(truncate("short", 10), "short");
        assert_eq!(truncate("a-very-long-label", 8), "a-very-~");
    }

    #[test]
    fn emit_writes_csv() {
        std::env::set_var("VBR_OUT", std::env::temp_dir().join("vbr_test_out"));
        let series = vec![Series {
            label: "demo".into(),
            points: vec![(1.0, 2.0), (2.0, 4.0)],
        }];
        emit("unit_test_demo", "demo", "x", &series);
        let path = out_dir().join("unit_test_demo.csv");
        let body = std::fs::read_to_string(path).unwrap();
        assert!(body.contains("x,demo"));
        assert!(body.contains("1,2"));
    }
}

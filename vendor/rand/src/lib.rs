//! Minimal offline stand-in for `rand` 0.8.5 covering the API surface this
//! workspace uses: `RngCore`, `SeedableRng`, `Rng::{gen, gen_range}`,
//! `rand::Error`. Sampling semantics (53-bit `f64`, Lemire-with-rejection
//! integer ranges) match rand 0.8.5 bit-for-bit so seeded runs agree with
//! the real crate.

use core::fmt;

pub struct Error;

impl fmt::Debug for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rand::Error")
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rand::Error")
    }
}

impl std::error::Error for Error {}

pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error>;
}

impl<'a, R: RngCore + ?Sized> RngCore for &'a mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        (**self).try_fill_bytes(dest)
    }
}

pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;
    fn from_seed(seed: Self::Seed) -> Self;
    fn seed_from_u64(mut state: u64) -> Self {
        // SplitMix64 expansion, as in rand 0.8.
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod distributions {
    use super::RngCore;

    /// Types samplable from the "Standard" distribution.
    pub trait StandardSample: Sized {
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
    }

    impl StandardSample for f64 {
        #[inline]
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // rand 0.8 "Standard" f64: top 53 bits scaled into [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    impl StandardSample for f32 {
        #[inline]
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
        }
    }

    impl StandardSample for u32 {
        #[inline]
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u32()
        }
    }

    impl StandardSample for u64 {
        #[inline]
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            rng.next_u64()
        }
    }

    impl StandardSample for bool {
        #[inline]
        fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
            // rand 0.8: high bit of a u32 draw.
            rng.next_u32() & (1 << 31) != 0
        }
    }

    /// Ranges usable with `Rng::gen_range`.
    pub trait SampleRange<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    #[inline]
    fn wmul64(a: u64, b: u64) -> (u64, u64) {
        let t = (a as u128) * (b as u128);
        ((t >> 64) as u64, t as u64)
    }

    #[inline]
    fn wmul32(a: u32, b: u32) -> (u32, u32) {
        let t = (a as u64) * (b as u64);
        ((t >> 32) as u32, t as u32)
    }

    // rand 0.8.5 UniformInt::sample_single_inclusive, 64-bit large type.
    #[inline]
    fn sample_inclusive_u64<R: RngCore + ?Sized>(low: u64, high: u64, rng: &mut R) -> u64 {
        let range = high.wrapping_sub(low).wrapping_add(1);
        if range == 0 {
            return rng.next_u64();
        }
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let v = rng.next_u64();
            let (hi, lo) = wmul64(v, range);
            if lo <= zone {
                return low.wrapping_add(hi);
            }
        }
    }

    // rand 0.8.5 UniformInt::sample_single_inclusive, 32-bit large type
    // (u8/u16/u32 use a u32 draw).
    #[inline]
    fn sample_inclusive_u32<R: RngCore + ?Sized>(low: u32, high: u32, rng: &mut R) -> u32 {
        let range = high.wrapping_sub(low).wrapping_add(1);
        if range == 0 {
            return rng.next_u32();
        }
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let v = rng.next_u32();
            let (hi, lo) = wmul32(v, range);
            if lo <= zone {
                return low.wrapping_add(hi);
            }
        }
    }

    macro_rules! range_impl_64 {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    sample_inclusive_u64(self.start as u64, self.end as u64 - 1, rng) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    sample_inclusive_u64(*self.start() as u64, *self.end() as u64, rng) as $t
                }
            }
        )*};
    }
    range_impl_64!(u64, usize);

    macro_rules! range_impl_32 {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range in gen_range");
                    sample_inclusive_u32(self.start as u32, self.end as u32 - 1, rng) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                #[inline]
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    sample_inclusive_u32(*self.start() as u32, *self.end() as u32, rng) as $t
                }
            }
        )*};
    }
    range_impl_32!(u8, u16, u32);

    impl SampleRange<f64> for core::ops::Range<f64> {
        #[inline]
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
            assert!(self.start < self.end, "empty range in gen_range");
            let u = f64::sample_standard(rng);
            self.start + (self.end - self.start) * u
        }
    }
}

pub trait Rng: RngCore {
    #[inline]
    fn gen<T: distributions::StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    #[inline]
    fn gen_range<T, S: distributions::SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

//! Minimal offline stand-in for `serde` with the `derive` feature: the
//! `Serialize` trait plus a no-op derive macro.

pub trait Serialize {}

#[cfg(feature = "derive")]
pub use serde_derive::Serialize;

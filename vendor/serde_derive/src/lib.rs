//! No-op `#[derive(Serialize)]` companion for the offline serde stub.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

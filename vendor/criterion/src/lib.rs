//! Minimal offline stand-in for `criterion` 0.5 covering the API used by
//! this workspace's `perf` bench: groups, throughput, `iter`,
//! `iter_batched`, and the `criterion_group!`/`criterion_main!` macros.
//! Each benchmark runs a handful of timed iterations and prints a
//! nanoseconds-per-iteration line.

use std::time::Instant;

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            samples: self.sample_size,
            _parent: std::marker::PhantomData,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(name, self.sample_size, &mut f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name), self.samples, &mut f);
        self
    }

    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(label: &str, samples: usize, f: &mut F) {
    let mut b = Bencher {
        total_nanos: 0.0,
        total_iters: 0,
        samples,
    };
    f(&mut b);
    let per_iter = if b.total_iters > 0 {
        b.total_nanos / b.total_iters as f64
    } else {
        0.0
    };
    println!("bench {label}: {per_iter:.1} ns/iter ({} iters)", b.total_iters);
}

pub struct Bencher {
    total_nanos: f64,
    total_iters: u64,
    samples: usize,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let iters = (self.samples as u64).max(1) * 10;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.total_nanos += start.elapsed().as_nanos() as f64;
        self.total_iters += iters;
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let iters = (self.samples as u64).max(1);
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total_nanos += start.elapsed().as_nanos() as f64;
            self.total_iters += 1;
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

//! Minimal offline stand-in for `proptest` 1.x covering the surface this
//! workspace uses: the `proptest!` macro with `x in strategy` / `x: type`
//! parameters, `#![proptest_config(ProptestConfig::with_cases(n))]`, range
//! and tuple strategies, `collection::vec`, `any::<T>()`, and the
//! `prop_assert!` family. Inputs are random (not shrunk); good enough to
//! compile and exercise the properties offline.

/// Deterministic xorshift-style generator for strategy sampling.
pub mod test_runner {
    /// Failure value carried by `?`-style property bodies.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    #[derive(Debug, Clone)]
    pub struct StubRng {
        state: u64,
    }

    impl StubRng {
        pub fn new(seed: u64) -> Self {
            Self {
                state: seed | 1,
            }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        pub fn below(&mut self, n: usize) -> usize {
            (((self.next_u64() as u128) * (n as u128)) >> 64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::StubRng;

    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut StubRng) -> Self::Value;
    }

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StubRng) -> f64 {
            self.start + (self.end - self.start) * rng.next_f64()
        }
    }

    impl Strategy for core::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut StubRng) -> f32 {
            self.start + (self.end - self.start) * rng.next_f64() as f32
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StubRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let off = ((rng.next_u64() as u128) * span) >> 64;
                    (self.start as i128 + off as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StubRng) -> $t {
                    let span = (*self.end() as i128 - *self.start() as i128 + 1) as u128;
                    let off = ((rng.next_u64() as u128) * span) >> 64;
                    (*self.start() as i128 + off as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StubRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);

    /// `Just(value)` — always yields the value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StubRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::StubRng;

    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut StubRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StubRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StubRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StubRng) -> Self {
            rng.next_f64()
        }
    }

    /// Strategy wrapper returned by `any::<T>()`.
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T> {
        _marker: core::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut StubRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::StubRng;

    /// Acceptable size arguments for `collection::vec`.
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StubRng) -> Self::Value {
            let n = self.size.lo + rng.below(self.size.hi - self.size.lo);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@fns ($cfg:expr);) => {};
    (@fns ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __seed = 0x5EED_0000u64 ^ stringify!($name).as_bytes().iter()
                .fold(0u64, |h, &b| h.wrapping_mul(31).wrapping_add(b as u64));
            let mut __rng = $crate::test_runner::StubRng::new(__seed);
            for __case in 0..__cfg.cases {
                let __result = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $crate::proptest!(@bind __rng; $($params)*);
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = __result {
                    panic!("property {} failed: {}", stringify!($name), e);
                }
            }
        }
        $crate::proptest!(@fns ($cfg); $($rest)*);
    };
    (@bind $rng:ident;) => {};
    (@bind $rng:ident; $p:pat in $s:expr) => {
        let $p = $crate::strategy::Strategy::generate(&($s), &mut $rng);
    };
    (@bind $rng:ident; $p:pat in $s:expr, $($rest:tt)*) => {
        let $p = $crate::strategy::Strategy::generate(&($s), &mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    (@bind $rng:ident; $i:ident : $t:ty) => {
        let $i: $t = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
    };
    (@bind $rng:ident; $i:ident : $t:ty, $($rest:tt)*) => {
        let $i: $t = $crate::arbitrary::Arbitrary::arbitrary(&mut $rng);
        $crate::proptest!(@bind $rng; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::ProptestConfig::default()); $($rest)*);
    };
}

//! Supervised multi-process CLR campaign driver.
//!
//! One binary, four modes:
//!
//! * **coordinator** (default): shards the replications, spawns one worker
//!   process per shard (re-executing itself with `--worker`), supervises
//!   heartbeats, restarts crashed/hung workers with backoff, quarantines
//!   permanent failures, and merges the shard checkpoints into one outcome —
//!   bit-identical to a single-process run. `--watch` adds a live terminal
//!   dashboard and `--serve ADDR` a live Prometheus scrape endpoint; both
//!   are read-only tailers over the same JSONL streams the supervisor
//!   writes, so results stay bit-identical with them on or off.
//! * **worker** (`--worker`): runs one shard's replication range with
//!   checkpoint-after-every-replication and heartbeat events on the shard's
//!   JSONL stream, stamped with `ts_ms` + `shard` for aggregation. Honors
//!   `VBR_FAULT` chaos specs (see `vbr_sim::fault`).
//! * **report** (`--report DIR`): replays a campaign dir's recorded event
//!   files into a post-mortem timeline (stderr) and a machine-readable JSON
//!   summary (stdout).
//! * **bench** (`--bench OUT.json`): times a fault-free campaign against a
//!   direct in-process run on the same config and records the supervisor
//!   overhead plus a bit-identity check.
//!
//! The Gaussian AR(1) source keeps the campaign machinery honest without
//! coupling it to the paper models; the `fig8` campaign recipe in
//! EXPERIMENTS.md drives the paper pipeline through the same supervisor API.

use std::io::{IsTerminal, Read as _, Write as _};
use std::net::TcpListener;
use std::path::PathBuf;
use std::process::Command;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use vbr_models::{
    CleggParams, CleggProcess, FrameProcess, GaussianAr1, MwmParams, MwmProcess,
};
use vbr_sim::campaign::{self, CampaignOptions, CampaignOutcome};
use vbr_sim::obs::aggregate::{render_campaign_prometheus, render_dashboard, CampaignAggregator};
use vbr_sim::obs::tail::Tailer;
use vbr_sim::obs::JsonlRecorder;
use vbr_sim::{run, RetryPolicy, RunOptions, SimConfig, SimOutcome};

/// Everything both sides of the fork must agree on. The coordinator forwards
/// these flags verbatim to every worker so the config fingerprint (and hence
/// checkpoint compatibility) is identical across processes.
#[derive(Clone)]
struct SharedConfig {
    replications: usize,
    frames: usize,
    warmup: Option<usize>,
    sources: usize,
    capacity: f64,
    buffers: Vec<f64>,
    seed: u64,
    mean: f64,
    sd: f64,
    phi: f64,
    model: String,
    hurst: f64,
}

impl Default for SharedConfig {
    fn default() -> Self {
        Self {
            replications: 8,
            frames: 20_000,
            warmup: None,
            sources: 4,
            capacity: 538.0,
            buffers: vec![0.0, 50.0, 200.0],
            seed: 7,
            mean: 500.0,
            sd: 70.0,
            phi: 0.8,
            model: "ar1".into(),
            hurst: 0.9,
        }
    }
}

impl SharedConfig {
    fn sim_config(&self) -> SimConfig {
        SimConfig {
            n_sources: self.sources,
            capacity_per_source: self.capacity,
            buffers_total: self.buffers.clone(),
            frames_per_replication: self.frames,
            warmup_frames: self.warmup.unwrap_or(self.frames / 20),
            replications: self.replications,
            seed: self.seed,
            ts: 0.04,
            track_bop: false,
        }
    }

    /// Builds the source prototype selected by `--model`. All three share
    /// the `--mean/--sd` marginal moments, so switching models changes only
    /// the correlation structure of the campaign's traffic.
    fn prototype(&self) -> Box<dyn FrameProcess> {
        match self.model.as_str() {
            "ar1" => Box::new(GaussianAr1::new(self.mean, self.sd, self.phi)),
            "clegg" => Box::new(CleggProcess::new(CleggParams {
                h: self.hurst,
                chains: 15,
                mean: self.mean,
                sd: self.sd,
            })),
            "mwm" => Box::new(MwmProcess::new(MwmParams {
                mean: self.mean,
                sd: self.sd,
                h: self.hurst,
                levels: 12,
            })),
            other => {
                eprintln!("error: unknown --model {other:?} (expected ar1|clegg|mwm)");
                std::process::exit(2);
            }
        }
    }

    /// The worker argv for these settings (coordinator → worker contract).
    fn forward_args(&self) -> Vec<String> {
        let buffers = self
            .buffers
            .iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(",");
        let mut args = vec![
            "--replications".into(),
            self.replications.to_string(),
            "--frames".into(),
            self.frames.to_string(),
            "--sources".into(),
            self.sources.to_string(),
            "--capacity".into(),
            self.capacity.to_string(),
            "--buffers".into(),
            buffers,
            "--seed".into(),
            self.seed.to_string(),
            "--mean".into(),
            self.mean.to_string(),
            "--sd".into(),
            self.sd.to_string(),
            "--phi".into(),
            self.phi.to_string(),
            "--model".into(),
            self.model.clone(),
            "--hurst".into(),
            self.hurst.to_string(),
        ];
        if let Some(w) = self.warmup {
            args.push("--warmup".into());
            args.push(w.to_string());
        }
        args
    }
}

struct CoordinatorConfig {
    shared: SharedConfig,
    shards: usize,
    dir: PathBuf,
    heartbeat_timeout: Duration,
    poll: Duration,
    worker_heartbeat: Duration,
    max_attempts: u32,
    backoff_base: Duration,
    threads: Option<usize>,
    bench: Option<PathBuf>,
    bench_label: String,
    watch: bool,
    serve: Option<String>,
}

struct WorkerConfig {
    shared: SharedConfig,
    range: std::ops::Range<usize>,
    shard: Option<usize>,
    checkpoint: PathBuf,
    events: PathBuf,
    worker_heartbeat: Duration,
    threads: Option<usize>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    let code = if args.iter().any(|a| a == "--worker") {
        worker_main(&args)
    } else if args.iter().any(|a| a == "--report") {
        report_main(&args)
    } else {
        coordinator_main(&args)
    };
    std::process::exit(code);
}

fn print_help() {
    println!(
        "campaign_run — supervised multi-process CLR campaign

USAGE:
  campaign_run [FLAGS]                  run a supervised campaign
  campaign_run --report DIR             post-mortem timeline + JSON summary
  campaign_run --bench OUT.json [FLAGS] fault-free overhead benchmark
  campaign_run --worker [FLAGS]         (internal) run one shard

CONFIG FLAGS (forwarded to workers):
  --replications R   total replications        (default 8)
  --frames F         frames per replication    (default 20000)
  --warmup W         warm-up frames            (default F/20)
  --sources N        multiplexed sources       (default 4)
  --capacity C       per-source cells/frame    (default 538)
  --buffers A,B,..   buffer grid (cells)       (default 0,50,200)
  --seed S           root RNG seed             (default 7)
  --mean M --sd S           source marginal moments   (default 500, 70)
  --model NAME       source family: ar1 (Gaussian AR(1)), clegg
                     (Clegg-Dodson Markov-chain LRD, 15 chains), or mwm
                     (multifractal wavelet cascade, 12 levels)
                                               (default ar1)
  --phi P            AR(1) lag-1 correlation   (default 0.8, ar1 only)
  --hurst H          target Hurst in (0.5,1)   (default 0.9, clegg/mwm only)

COORDINATOR FLAGS:
  --shards N                worker processes          (default 4)
  --dir PATH                campaign working dir      (default target/campaign)
  --heartbeat-timeout-ms T  stall deadline            (default 30000)
  --poll-ms T               supervisor poll           (default 250)
  --worker-heartbeat-ms T   worker beat interval      (default 500)
  --max-attempts K          attempts per shard        (default 3)
  --backoff-base-ms T       first retry backoff       (default 200)
  --threads N               threads per worker        (default auto)

OBSERVATORY FLAGS (read-only; results stay bit-identical on or off):
  --watch                   live terminal dashboard on stderr (per-shard
                            progress bars, restarts/stalls/quarantine,
                            merged CLR-so-far, P2-quantile ETA)
  --serve ADDR              live Prometheus text exposition at
                            http://ADDR/metrics while the campaign runs
  --report DIR              replay DIR's recorded event streams into a
                            post-mortem timeline (stderr) + JSON summary
                            (stdout), then exit
  --bench-label NAME        label written into --bench output (default BENCH_5)

Fault injection: set VBR_FAULT=crash@r[:k]|hang@r[:k]|corrupt-checkpoint@r[:k]
(comma-separated; k = attempt number, `*` = every attempt). Workers inherit
the environment, so exporting VBR_FAULT before a campaign injects chaos."
    );
}

/// Pulls `--flag value` from argv, parsed; exits with a message on garbage.
fn flag<T: std::str::FromStr>(args: &[String], name: &str) -> Option<T> {
    let idx = args.iter().position(|a| a == name)?;
    let raw = args.get(idx + 1).unwrap_or_else(|| {
        eprintln!("error: {name} needs a value");
        std::process::exit(2);
    });
    match raw.parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!("error: invalid value {raw:?} for {name}");
            std::process::exit(2);
        }
    }
}

fn parse_shared(args: &[String]) -> SharedConfig {
    let mut c = SharedConfig::default();
    if let Some(v) = flag(args, "--replications") {
        c.replications = v;
    }
    if let Some(v) = flag(args, "--frames") {
        c.frames = v;
    }
    c.warmup = flag(args, "--warmup").or(c.warmup);
    if let Some(v) = flag(args, "--sources") {
        c.sources = v;
    }
    if let Some(v) = flag(args, "--capacity") {
        c.capacity = v;
    }
    if let Some(raw) = flag::<String>(args, "--buffers") {
        c.buffers = raw
            .split(',')
            .map(|s| {
                s.trim().parse().unwrap_or_else(|_| {
                    eprintln!("error: invalid buffer {s:?} in --buffers");
                    std::process::exit(2);
                })
            })
            .collect();
    }
    if let Some(v) = flag(args, "--seed") {
        c.seed = v;
    }
    if let Some(v) = flag(args, "--mean") {
        c.mean = v;
    }
    if let Some(v) = flag(args, "--sd") {
        c.sd = v;
    }
    if let Some(v) = flag(args, "--phi") {
        c.phi = v;
    }
    if let Some(v) = flag::<String>(args, "--model") {
        c.model = v;
    }
    if let Some(v) = flag(args, "--hurst") {
        c.hurst = v;
    }
    // Fail fast on an unknown model or bad Hurst before any worker spawns
    // (prototype() exits with a message on unknown names, the model
    // constructors panic on out-of-range parameters).
    let _ = c.prototype();
    c
}

fn worker_main(args: &[String]) -> i32 {
    let raw_range: String = flag(args, "--range").unwrap_or_else(|| {
        eprintln!("error: --worker needs --range LO:HI");
        std::process::exit(2);
    });
    let Some((lo, hi)) = raw_range
        .split_once(':')
        .and_then(|(a, b)| Some((a.parse().ok()?, b.parse().ok()?)))
    else {
        eprintln!("error: invalid --range {raw_range:?} (want LO:HI)");
        return 2;
    };
    let cfg = WorkerConfig {
        shared: parse_shared(args),
        range: lo..hi,
        shard: flag(args, "--shard"),
        checkpoint: flag(args, "--checkpoint").unwrap_or_else(|| {
            eprintln!("error: --worker needs --checkpoint PATH");
            std::process::exit(2);
        }),
        events: flag(args, "--events").unwrap_or_else(|| {
            eprintln!("error: --worker needs --events PATH");
            std::process::exit(2);
        }),
        worker_heartbeat: Duration::from_millis(
            flag(args, "--worker-heartbeat-ms").unwrap_or(500),
        ),
        threads: flag(args, "--threads"),
    };

    // Timestamp + shard stamps make the stream self-describing for live
    // aggregation — shard identity never has to be inferred from the path.
    let mut rec = match JsonlRecorder::append(&cfg.events) {
        Ok(r) => r.with_timestamps(),
        Err(e) => {
            eprintln!("error: cannot open event stream {}: {e}", cfg.events.display());
            return 1;
        }
    };
    if let Some(shard) = cfg.shard {
        rec = rec.with_shard(shard);
    }
    let recorder = Arc::new(rec);
    let mut options = campaign::worker_options(
        cfg.checkpoint.clone(),
        cfg.range.clone(),
        cfg.worker_heartbeat,
        Some(recorder),
    );
    options.threads = cfg.threads;
    match run(&*cfg.shared.prototype(), &cfg.shared.sim_config(), &options) {
        Ok(_) => 0,
        Err(e) => {
            eprintln!("worker error: {e}");
            1
        }
    }
}

fn parse_coordinator(args: &[String]) -> CoordinatorConfig {
    CoordinatorConfig {
        shared: parse_shared(args),
        shards: flag(args, "--shards").unwrap_or(4),
        dir: flag(args, "--dir").unwrap_or_else(|| PathBuf::from("target/campaign")),
        heartbeat_timeout: Duration::from_millis(
            flag(args, "--heartbeat-timeout-ms").unwrap_or(30_000),
        ),
        poll: Duration::from_millis(flag(args, "--poll-ms").unwrap_or(250)),
        worker_heartbeat: Duration::from_millis(
            flag(args, "--worker-heartbeat-ms").unwrap_or(500),
        ),
        max_attempts: flag(args, "--max-attempts").unwrap_or(3),
        backoff_base: Duration::from_millis(flag(args, "--backoff-base-ms").unwrap_or(200)),
        threads: flag(args, "--threads"),
        bench: flag(args, "--bench"),
        bench_label: flag(args, "--bench-label").unwrap_or_else(|| "BENCH_5".to_string()),
        watch: args.iter().any(|a| a == "--watch"),
        serve: flag(args, "--serve"),
    }
}

fn run_supervised(cfg: &CoordinatorConfig) -> Result<CampaignOutcome, vbr_sim::SimError> {
    let sim_config = cfg.shared.sim_config();
    let exe = std::env::current_exe().map_err(|e| vbr_sim::SimError::io("locating own executable", e))?;
    let campaign_events = cfg.dir.join("campaign.events.jsonl");
    std::fs::create_dir_all(&cfg.dir)
        .map_err(|e| vbr_sim::SimError::io(format!("creating {}", cfg.dir.display()), e))?;
    let recorder = JsonlRecorder::create(&campaign_events)
        .map_err(|e| vbr_sim::SimError::io(format!("creating {}", campaign_events.display()), e))?
        .with_timestamps();
    let options = CampaignOptions {
        shards: cfg.shards,
        dir: cfg.dir.clone(),
        retry: RetryPolicy {
            max_attempts: cfg.max_attempts,
            base: cfg.backoff_base,
            ..RetryPolicy::default()
        },
        heartbeat_timeout: cfg.heartbeat_timeout,
        poll_interval: cfg.poll,
        recorder: Some(Arc::new(recorder)),
    };
    let forward = cfg.shared.forward_args();
    let worker_heartbeat = cfg.worker_heartbeat;
    let threads = cfg.threads;
    let observatory = start_observatory(cfg)?;
    let result = campaign::run_campaign(&sim_config, &options, move |plan, _attempt| {
        let mut cmd = Command::new(&exe);
        cmd.arg("--worker")
            .args(&forward)
            .arg("--range")
            .arg(format!("{}:{}", plan.range.start, plan.range.end))
            .arg("--shard")
            .arg(plan.index.to_string())
            .arg("--checkpoint")
            .arg(&plan.checkpoint)
            .arg("--events")
            .arg(&plan.events)
            .arg("--worker-heartbeat-ms")
            .arg(worker_heartbeat.as_millis().to_string());
        if let Some(t) = threads {
            cmd.arg("--threads").arg(t.to_string());
        }
        cmd
    });
    if let Some(obs) = observatory {
        obs.finish();
    }
    result
}

/// Wall-clock milliseconds since the UNIX epoch — the same clock the
/// recorders stamp events with, so gap-based stall detection compares
/// like with like.
fn unix_now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Background read-only view over the campaign's event streams: a tailing
/// aggregator thread (driving `--watch`) plus an optional scrape endpoint
/// (`--serve`). Never writes to campaign state — results are bit-identical
/// whether or not it runs.
struct Observatory {
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Observatory {
    /// Signals the threads to do a final drain/render and waits for them.
    fn finish(self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.handles {
            let _ = h.join();
        }
    }
}

fn start_observatory(cfg: &CoordinatorConfig) -> Result<Option<Observatory>, vbr_sim::SimError> {
    if !cfg.watch && cfg.serve.is_none() {
        return Ok(None);
    }
    let agg = Arc::new(Mutex::new(CampaignAggregator::new(
        cfg.heartbeat_timeout.as_millis() as u64,
    )));
    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // Same plan the supervisor computes, so the tailers follow exactly the
    // files the workers write — plus the coordinator's own stream.
    let plans = campaign::plan_shards(&cfg.shared.sim_config(), cfg.shards, &cfg.dir);
    let mut tails: Vec<Tailer> = std::iter::once(cfg.dir.join("campaign.events.jsonl"))
        .chain(plans.iter().map(|p| p.events.clone()))
        .map(Tailer::new)
        .collect();
    let watch = cfg.watch;
    {
        let agg = Arc::clone(&agg);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || {
            let ansi = std::io::stderr().is_terminal();
            let mut last_plain: Option<Instant> = None;
            let mut cleared = false;
            loop {
                let stopping = stop.load(Ordering::Relaxed);
                let mut fresh = false;
                for t in tails.iter_mut() {
                    let polled = t.poll();
                    if !polled.lines.is_empty() {
                        fresh = true;
                        let mut a = agg.lock().unwrap_or_else(|e| e.into_inner());
                        for line in &polled.lines {
                            a.ingest_line(line);
                        }
                    }
                }
                if watch {
                    let snap = {
                        let a = agg.lock().unwrap_or_else(|e| e.into_inner());
                        a.snapshot(unix_now_ms())
                    };
                    if ansi {
                        if !cleared {
                            eprint!("\x1b[2J");
                            cleared = true;
                        }
                        // Redraw in place: home, frame, clear below.
                        eprint!("\x1b[H{}\x1b[J", render_dashboard(&snap, 30, true));
                    } else if stopping
                        || (fresh
                            && last_plain
                                .is_none_or(|t| t.elapsed() >= Duration::from_secs(2)))
                    {
                        // Not a terminal (CI logs): periodic plain frames.
                        eprint!("{}", render_dashboard(&snap, 30, false));
                        last_plain = Some(Instant::now());
                    }
                }
                if stopping {
                    if watch && ansi {
                        eprintln!();
                    }
                    break;
                }
                std::thread::sleep(Duration::from_millis(200));
            }
        }));
    }

    if let Some(addr) = &cfg.serve {
        let listener = TcpListener::bind(addr)
            .map_err(|e| vbr_sim::SimError::io(format!("binding --serve {addr}"), e))?;
        let _ = listener.set_nonblocking(true);
        eprintln!("serving live campaign metrics on http://{addr}/metrics");
        let agg = Arc::clone(&agg);
        let stop = Arc::clone(&stop);
        handles.push(std::thread::spawn(move || serve_metrics(listener, &agg, &stop)));
    }
    Ok(Some(Observatory { stop, handles }))
}

/// Minimal single-threaded HTTP/1.1 responder for Prometheus scrapes: each
/// accepted connection gets one text-exposition response rendered from the
/// live aggregate, then the connection closes (scrape semantics — no
/// keep-alive needed).
fn serve_metrics(listener: TcpListener, agg: &Mutex<CampaignAggregator>, stop: &AtomicBool) {
    loop {
        match listener.accept() {
            Ok((mut stream, _)) => {
                let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                let mut buf = [0u8; 1024];
                let n = stream.read(&mut buf).unwrap_or(0);
                let req = String::from_utf8_lossy(&buf[..n]);
                let path = req.split_whitespace().nth(1).unwrap_or("/");
                let (status, body) = if path == "/metrics" || path == "/" {
                    let snap = {
                        let a = agg.lock().unwrap_or_else(|e| e.into_inner());
                        a.snapshot(unix_now_ms())
                    };
                    ("200 OK", render_campaign_prometheus(&snap))
                } else {
                    ("404 Not Found", "not found\n".to_string())
                };
                let _ = write!(
                    stream,
                    "HTTP/1.1 {status}\r\n\
                     Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
                     Content-Length: {}\r\n\
                     Connection: close\r\n\r\n{body}",
                    body.len()
                );
                let _ = stream.flush();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// `--report DIR`: replay recorded event streams into a post-mortem
/// timeline + final dashboard (stderr) and a JSON summary (stdout). Uses
/// the streams' own `ts_ms` stamps as the clock, so output is a pure
/// function of the recorded files.
fn report_main(args: &[String]) -> i32 {
    let Some(dir) = flag::<PathBuf>(args, "--report") else {
        eprintln!("error: --report needs a campaign directory");
        return 2;
    };
    let stall_ms: u64 = flag(args, "--heartbeat-timeout-ms").unwrap_or(30_000);
    let mut agg = CampaignAggregator::new(stall_ms).with_timeline();

    // Coordinator stream first (lifecycle ground truth), then shard streams.
    // Ordering is cosmetic only: aggregation is max-merge idempotent and the
    // timeline sorts by stamp.
    let mut files: Vec<PathBuf> = Vec::new();
    let campaign_events = dir.join("campaign.events.jsonl");
    if campaign_events.is_file() {
        files.push(campaign_events);
    }
    let mut shard_files: Vec<PathBuf> = match std::fs::read_dir(&dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".events.jsonl"))
            })
            .collect(),
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", dir.display());
            return 1;
        }
    };
    shard_files.sort();
    files.extend(shard_files);
    if files.is_empty() {
        eprintln!("error: no *.events.jsonl files in {}", dir.display());
        return 1;
    }
    for f in &files {
        match std::fs::read_to_string(f) {
            Ok(body) => {
                agg.ingest_stream(&body);
            }
            Err(e) => eprintln!("warning: skipping {}: {e}", f.display()),
        }
    }
    let now = agg.latest_ts_ms().unwrap_or(0);
    eprint!("{}", agg.render_timeline());
    eprint!("{}", render_dashboard(&agg.snapshot(now), 30, false));
    println!("{}", agg.report_json(now));
    0
}

/// One line of machine-readable summary on stdout — what the CI smoke job
/// and the chaos tests parse.
fn print_summary_json(outcome: &CampaignOutcome) {
    let o = &outcome.outcome;
    let r = &outcome.report;
    let mut clrs = String::new();
    let mut bits = String::new();
    for (i, est) in o.per_buffer.iter().enumerate() {
        if i > 0 {
            clrs.push(',');
            bits.push(',');
        }
        clrs.push_str(&format!("{:e}", est.pooled.clr()));
        bits.push_str(&format!("\"{:016x}\"", est.pooled.clr().to_bits()));
    }
    println!(
        "{{\"requested\":{},\"completed\":{},\"partial\":{},\"shards\":{},\"quarantined\":{},\"restarts\":{},\"stalls\":{},\"fallbacks\":{},\"clr\":[{}],\"clr_bits\":[{}],\"wall_s\":{:.3}}}",
        o.provenance.requested,
        o.provenance.completed,
        o.provenance.is_partial(),
        r.shards.len(),
        r.quarantined(),
        r.restarts,
        r.stalls,
        r.fallbacks,
        clrs,
        bits,
        r.wall.as_secs_f64(),
    );
}

fn coordinator_main(args: &[String]) -> i32 {
    let cfg = parse_coordinator(args);
    if let Some(bench_out) = &cfg.bench {
        return bench_main(&cfg, bench_out);
    }
    match run_supervised(&cfg) {
        Ok(outcome) => {
            let r = &outcome.report;
            eprintln!(
                "campaign: {}/{} replications across {} shards ({} quarantined), {} restarts, {} stalls, {:.2}s",
                outcome.outcome.provenance.completed,
                outcome.outcome.provenance.requested,
                r.shards.len(),
                r.quarantined(),
                r.restarts,
                r.stalls,
                r.wall.as_secs_f64()
            );
            for est in &outcome.outcome.per_buffer {
                eprintln!(
                    "  B = {:>8.1} cells ({:>6.2} ms): pooled CLR {:.3e}",
                    est.buffer_total,
                    est.buffer_ms,
                    est.pooled.clr()
                );
            }
            print_summary_json(&outcome);
            0
        }
        Err(e) => {
            eprintln!("campaign error: {e}");
            1
        }
    }
}

/// Fault-free supervisor-overhead benchmark (BENCH_5): direct in-process run
/// vs a supervised multi-process campaign on the same config, plus pooled-CLR
/// bit-identity between the two.
fn bench_main(cfg: &CoordinatorConfig, out: &std::path::Path) -> i32 {
    let sim_config = cfg.shared.sim_config();
    let proto = cfg.shared.prototype();
    if let Err(e) = std::fs::create_dir_all(&cfg.dir) {
        eprintln!("bench: cannot create {}: {e}", cfg.dir.display());
        return 1;
    }

    // The direct baseline gets the same per-replication checkpoint
    // durability the workers have, so the delta is the supervisor itself
    // (spawn + heartbeats + poll loop + merge), not the checkpoint writes.
    let time_direct = |label: &str| -> Result<(f64, SimOutcome), vbr_sim::SimError> {
        let ckpt = cfg.dir.join(format!("{label}.ckpt"));
        let _ = std::fs::remove_file(&ckpt);
        let _ = std::fs::remove_file(ckpt.with_extension("ckpt.prev"));
        let t = Instant::now();
        let outcome = run(
            &*proto,
            &sim_config,
            &RunOptions {
                threads: cfg.threads,
                checkpoint: Some(vbr_sim::CheckpointPolicy::new(&ckpt)),
                ..RunOptions::default()
            },
        )?;
        Ok((t.elapsed().as_secs_f64(), outcome))
    };
    let time_campaign = |label: &str| -> Result<(f64, CampaignOutcome), vbr_sim::SimError> {
        let dir = cfg.dir.join(label);
        let _ = std::fs::remove_dir_all(&dir);
        let run_cfg = CoordinatorConfig {
            shared: cfg.shared.clone(),
            shards: cfg.shards,
            dir,
            heartbeat_timeout: cfg.heartbeat_timeout,
            poll: cfg.poll,
            worker_heartbeat: cfg.worker_heartbeat,
            max_attempts: cfg.max_attempts,
            backoff_base: cfg.backoff_base,
            threads: cfg.threads,
            bench: None,
            bench_label: cfg.bench_label.clone(),
            watch: false,
            serve: None,
        };
        let t = Instant::now();
        let outcome = run_supervised(&run_cfg)?;
        Ok((t.elapsed().as_secs_f64(), outcome))
    };

    let runs = 3usize;
    let mut direct_times = Vec::new();
    let mut campaign_times = Vec::new();
    let mut direct_outcome = None;
    let mut campaign_outcome = None;
    for i in 0..runs {
        match time_direct(&format!("direct-{i}")) {
            Ok((secs, o)) => {
                direct_times.push(secs);
                direct_outcome = Some(o);
            }
            Err(e) => {
                eprintln!("bench: direct run failed: {e}");
                return 1;
            }
        }
        match time_campaign(&format!("bench-{i}")) {
            Ok((secs, o)) => {
                campaign_times.push(secs);
                campaign_outcome = Some(o);
            }
            Err(e) => {
                eprintln!("bench: campaign run failed: {e}");
                return 1;
            }
        }
    }
    let (Some(direct), Some(campaign)) = (direct_outcome, campaign_outcome) else {
        eprintln!("bench: no outcomes");
        return 1;
    };
    let bits = |o: &SimOutcome| -> Vec<u64> {
        o.per_buffer.iter().map(|e| e.pooled.clr().to_bits()).collect()
    };
    let identical = bits(&direct) == bits(&campaign.outcome)
        && !campaign.outcome.provenance.is_partial()
        && campaign.report.restarts == 0;
    let best = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    let fmt_runs = |v: &[f64]| {
        v.iter()
            .map(|s| format!("{s:.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let direct_best = best(&direct_times);
    let campaign_best = best(&campaign_times);
    let overhead_pct = (campaign_best / direct_best - 1.0) * 100.0;
    let body = format!(
        "{{\n  \"bench\": \"{}\",\n  \"description\": \"supervisor overhead on the fault-free path: Gaussian AR(1) N={}, {} frames/rep, {} reps, {} buffers, {} shard processes vs one direct in-process run\",\n  \"direct_runs_seconds\": [{}],\n  \"direct_best_seconds\": {:.3},\n  \"campaign_runs_seconds\": [{}],\n  \"campaign_best_seconds\": {:.3},\n  \"supervisor_overhead_pct\": {:.3},\n  \"clr_buffer0\": {:e},\n  \"results_bit_identical\": {}\n}}\n",
        cfg.bench_label,
        cfg.shared.sources,
        cfg.shared.frames,
        cfg.shared.replications,
        cfg.shared.buffers.len(),
        cfg.shards,
        fmt_runs(&direct_times),
        direct_best,
        fmt_runs(&campaign_times),
        campaign_best,
        overhead_pct,
        direct.per_buffer[0].pooled.clr(),
        identical,
    );
    if let Err(e) = std::fs::write(out, &body) {
        eprintln!("bench: cannot write {}: {e}", out.display());
        return 1;
    }
    print!("{body}");
    if identical {
        0
    } else {
        eprintln!("bench: campaign result NOT bit-identical to direct run");
        1
    }
}

//! # lrd-video
//!
//! Umbrella crate for the reproduction of Ryu & Elwalid (SIGCOMM '96),
//! *"The Importance of Long-Range Dependence of VBR Video Traffic in ATM
//! Traffic Engineering: Myths and Realities"*.
//!
//! Everything lives in the member crates; this crate re-exports them under
//! one roof and hosts the runnable examples (`examples/`) and cross-crate
//! integration tests (`tests/`).
//!
//! * [`stats`] — numerics substrate (RNG, distributions, FFT, Hurst, ...)
//! * [`models`] — VBR traffic models (DAR(p), FBNDP, FGN, superpositions)
//! * [`asymptotics`] — large deviations: V(m), CTS, Bahadur-Rao, Weibull
//! * [`sim`] — fluid + cell-level multiplexer simulation, replication harness
//! * [`obs`] — observability: tracing spans, streaming metrics, run telemetry
//! * [`atm`] — ATM cell codec (HEC), GCRA policing, spacing
//! * [`core`] — the paper pipeline: Table-1 solvers, DAR matching,
//!   experiment drivers, prelude
//!
//! Start with [`core::prelude`] and the `examples/quickstart.rs` walkthrough.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use vbr_asymptotics as asymptotics;
pub use vbr_atm as atm;
pub use vbr_core as core;
pub use vbr_models as models;
pub use vbr_obs as obs;
pub use vbr_sim as sim;
pub use vbr_stats as stats;

pub use vbr_core::prelude;
